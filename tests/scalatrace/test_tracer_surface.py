"""Remaining tracer API surface: collectives, intervals, subset merges."""

import pytest

from repro.scalatrace import Op, RankSet, ScalaTraceTracer, Trace
from repro.simmpi import SimConfig, ANY_SOURCE, ZERO_COST, run_spmd


def run_traced(prog, nprocs):
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        ret = await prog(ctx, tracer)
        return {"ret": ret, "tracer": tracer}

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))


class TestTracedCollectives:
    def test_all_collective_wrappers_record(self):
        async def prog(ctx, tr):
            await tr.bcast(b"data", root=0, size=64)
            await tr.reduce(1.0, root=0, size=8)
            await tr.gather(ctx.rank, root=0, size=8)
            values = [0] * ctx.size if ctx.rank == 0 else None
            await tr.scatter(values, root=0, size=8)
            await tr.allgather(ctx.rank, size=8)
            await tr.alltoall([0] * ctx.size, size=8)
            trace = await tr.finalize()
            return trace

        res = run_traced(prog, 4)
        trace = res.results[0]["ret"]
        ops = {l.record.op for l in trace.leaves()}
        assert ops == {
            Op.BCAST,
            Op.REDUCE,
            Op.GATHER,
            Op.SCATTER,
            Op.ALLGATHER,
            Op.ALLTOALL,
        }
        # semantic results unchanged by tracing: roots recorded
        roots = {l.record.root for l in trace.leaves()}
        assert 0 in roots

    def test_collective_results_correct_through_tracer(self):
        async def prog(ctx, tr):
            total = await tr.allreduce(ctx.rank)
            gathered = await tr.gather(ctx.rank, root=0)
            return (total, gathered)

        res = run_traced(prog, 4)
        assert res.results[0]["ret"][0] == 6
        assert res.results[0]["ret"][1] == [0, 1, 2, 3]
        assert res.results[1]["ret"][1] is None


class TestIntervalTracking:
    def test_interval_records_and_clear(self):
        async def prog(ctx, tr):
            await tr.barrier()
            await tr.barrier()
            n1 = len(tr.interval_records())
            tr.clear_interval()
            n2 = len(tr.interval_records())
            await tr.barrier()
            n3 = len(tr.interval_records())
            await tr.finalize()
            return (n1, n2, n3)

        res = run_traced(prog, 2)
        assert res.results[0]["ret"] == (2, 0, 1)

    def test_peak_bytes_monotone(self):
        async def prog(ctx, tr):
            peaks = []
            for i in range(4):
                with ctx.frame(f"site_{i}"):  # distinct sites: trace grows
                    await tr.allreduce(0.0, size=8)
                peaks.append(tr.stats.peak_bytes)
            await tr.finalize()
            return peaks

        peaks = run_traced(prog, 2).results[0]["ret"]
        assert peaks == sorted(peaks)
        assert peaks[-1] > peaks[0]

    def test_events_counters(self):
        async def prog(ctx, tr):
            await tr.barrier()
            tr.enabled = False
            await tr.barrier()
            tr.enabled = True
            await tr.finalize()
            return (tr.stats.events_recorded, tr.stats.events_skipped)

        assert run_traced(prog, 2).results[0]["ret"] == (1, 1)


class TestSubsetTreeMerge:
    def test_merge_over_tree_subset_members(self):
        """Chameleon's lead merge: only the listed members participate."""

        async def prog(ctx, tr):
            with ctx.frame("k"):
                await tr.allreduce(0.0, size=8)
            members = [0, 2, 3]
            if ctx.rank in members:
                local = Trace(
                    nodes=tr.compressor.take_nodes(),
                    origin=RankSet.single(ctx.rank),
                    nprocs=ctx.size,
                )
                merged = await tr.merge_over_tree(local, members=members)
                return merged
            return await tr.merge_over_tree(Trace(), members=members)

        res = run_traced(prog, 5)
        merged = res.results[0]["ret"]
        assert merged is not None
        assert all(res.results[r]["ret"] is None for r in (1, 2, 3, 4))
        covered = set()
        for l in merged.leaves():
            covered.update(l.record.participants.ranks())
        assert covered == {0, 2, 3}

    def test_nonmember_returns_none_without_comm(self):
        async def prog(ctx, tr):
            result = await tr.merge_over_tree(Trace(), members=[1])
            return result is None if ctx.rank != 1 else result is not None

        res = run_traced(prog, 3)
        assert all(r["ret"] for r in res.results)


class TestTracedWildcards:
    def test_sendrecv_with_wildcard_source(self):
        async def prog(ctx, tr):
            peer = (ctx.rank + 1) % ctx.size
            got = await tr.sendrecv(peer, ctx.rank, source=ANY_SOURCE)
            trace = await tr.finalize()
            return (got, trace)

        res = run_traced(prog, 3)
        trace = res.results[0]["ret"][1]
        srs = [l.record for l in trace.leaves() if l.record.op is Op.SENDRECV]
        assert srs and all(r.src is None for r in srs)  # wildcard recorded
