"""Signature primitives: hashing, stack capture, Call-Path, SRC/DEST."""

from hypothesis import given, strategies as st

from repro.scalatrace import (
    EndpointSignatures,
    RunningAverage,
    StackWalker,
    callpath_signature,
    combine_frames,
    fnv1a64,
    frame_signature,
    hash_u64,
)

U64 = st.integers(0, (1 << 64) - 1)


class TestHashes:
    def test_fnv_known_values(self):
        # standard FNV-1a 64 test vectors
        assert fnv1a64(b"") == 0xCBF29CE484222325
        assert fnv1a64(b"a") == 0xAF63DC4C8601EC8C

    @given(st.binary(max_size=64))
    def test_fnv_in_range_and_stable(self, data):
        h = fnv1a64(data)
        assert 0 <= h < (1 << 64)
        assert h == fnv1a64(data)

    @given(U64)
    def test_hash_u64_in_range(self, x):
        assert 0 <= hash_u64(x) < (1 << 64)

    def test_hash_u64_spreads_small_ints(self):
        sigs = {hash_u64(i) for i in range(100)}
        assert len(sigs) == 100

    def test_combine_frames_order_sensitive(self):
        a, b = hash_u64(1), hash_u64(2)
        assert combine_frames([a, b]) != combine_frames([b, a])

    def test_combine_frames_empty_is_zero(self):
        assert combine_frames([]) == 0

    def test_frame_signature_distinguishes_lines(self):
        assert frame_signature("f.py", "g", 10) != frame_signature("f.py", "g", 11)


class TestCallPath:
    def test_empty_sequence_is_zero(self):
        assert callpath_signature([]) == 0

    def test_repeatable(self):
        sigs = [hash_u64(i) for i in (5, 6, 7)]
        assert callpath_signature(sigs) == callpath_signature(sigs)

    def test_order_sensitive(self):
        a, b = hash_u64(10), hash_u64(20)
        assert callpath_signature([a, b]) != callpath_signature([b, a])

    def test_permutations_do_not_cancel(self):
        # Plain XOR of [a, b, a, b] and [a, a, b, b] would collide; the
        # sequence-number multiplier must separate them.
        a, b = hash_u64(3), hash_u64(4)
        assert callpath_signature([a, b, a, b]) != callpath_signature([a, a, b, b])

    def test_recursion_does_not_cancel(self):
        # XOR alone would give sig([a, a]) == 0 == sig([]).
        a = hash_u64(9)
        assert callpath_signature([a, a]) != 0

    @given(st.lists(U64, min_size=1, max_size=30))
    def test_in_range(self, sigs):
        assert 0 <= callpath_signature(sigs) < (1 << 64)


class TestRunningAverage:
    def test_single_value(self):
        ra = RunningAverage()
        ra.add(1000)
        assert ra.signature() == 1000

    def test_empty_signature_zero(self):
        assert RunningAverage().signature() == 0

    @given(st.lists(U64, min_size=1, max_size=100))
    def test_tracks_true_mean_without_overflow(self, xs):
        ra = RunningAverage()
        for x in xs:
            ra.add(x)
        true_mean = sum(xs) / len(xs)
        # relative error of the float estimator stays tiny
        assert abs(ra.mean - true_mean) <= max(1.0, true_mean * 1e-9)

    @given(st.lists(U64, min_size=1, max_size=40), st.lists(U64, min_size=1, max_size=40))
    def test_merge_equals_combined_stream(self, xs, ys):
        a, b, c = RunningAverage(), RunningAverage(), RunningAverage()
        for x in xs:
            a.add(x)
            c.add(x)
        for y in ys:
            b.add(y)
            c.add(y)
        a.merge(b)
        assert a.count == c.count
        assert abs(a.mean - c.mean) < max(1.0, c.mean * 1e-9)

    def test_merge_empty_noop(self):
        a = RunningAverage()
        a.add(5)
        a.merge(RunningAverage())
        assert a.count == 1 and a.signature() == 5


class TestEndpointSignatures:
    def test_observe_none_ignored(self):
        es = EndpointSignatures()
        es.observe(None, None)
        assert es.values() == (0, 0)

    def test_src_dest_independent(self):
        es = EndpointSignatures()
        es.observe(1, None)
        es.observe(None, -1)
        src, dest = es.values()
        assert src != 0 and dest != 0 and src != dest

    def test_same_offsets_same_signature(self):
        a, b = EndpointSignatures(), EndpointSignatures()
        for _ in range(3):
            a.observe(1, -1)
            b.observe(1, -1)
        assert a.values() == b.values()

    def test_reset(self):
        es = EndpointSignatures()
        es.observe(2, 3)
        es.reset()
        assert es.values() == (0, 0)


class _Level2:
    @staticmethod
    def call(walker, logical):
        return walker.capture(logical)


def _level1(walker, logical):
    return _Level2.call(walker, logical)


class TestStackWalker:
    def test_different_call_sites_differ(self):
        w = StackWalker()
        sig_a, _ = w.capture()
        sig_b, _ = w.capture()
        # same function, different line numbers
        assert sig_a != sig_b

    def test_same_call_site_stable(self):
        w = StackWalker()
        sigs = [w.capture()[0] for _ in range(3)]
        assert sigs[0] == sigs[1] == sigs[2]

    def test_deeper_stack_changes_signature(self):
        w = StackWalker()
        direct, _ = w.capture()
        nested, frames = _level1(w, ())
        assert direct != nested
        assert any("_level1" in f for f in frames)

    def test_logical_frames_contribute(self):
        w = StackWalker()

        def site():
            return w.capture(()), w.capture(("phase-x",))

        (plain, _), (tagged, frames) = site()
        # NOTE: the two captures are on different lines, so compare the
        # logical-frame effect at one site instead:
        sig1, _ = _level1(w, ())
        sig2, frames2 = _level1(w, ("phase-x",))
        assert sig1 != sig2
        assert "<phase-x>" in frames2
