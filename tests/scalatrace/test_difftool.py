"""Semantic trace diffing — incl. the Chameleon ≡ ScalaTrace equivalence."""

import pytest

from repro.core import ChameleonConfig, ChameleonTracer
from repro.scalatrace import ScalaTraceTracer, diff_traces
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def trace_with(tracer_factory, prog, nprocs):
    async def main(ctx):
        tracer = tracer_factory(ctx)
        await prog(ctx, tracer)
        return await tracer.finalize()

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results[0]


async def kernel(ctx, tr, steps=8):
    for _ in range(steps):
        with ctx.frame("halo"):
            if ctx.rank + 1 < ctx.size:
                await tr.send(ctx.rank + 1, None, size=256)
            if ctx.rank > 0:
                await tr.recv(ctx.rank - 1)
        with ctx.frame("norm"):
            await tr.allreduce(0.0, size=8)
        await tr.marker()


class TestDiffBasics:
    def test_identical_traces(self):
        a = trace_with(ScalaTraceTracer, kernel, 6)
        b = trace_with(ScalaTraceTracer, kernel, 6)
        d = diff_traces(a, b)
        assert d.similarity() == 1.0
        assert d.rank_coverage_ok()
        assert not d.missing_in_a and not d.missing_in_b

    def test_different_workloads_detected(self):
        async def other(ctx, tr):
            for _ in range(8):
                with ctx.frame("different"):
                    await tr.barrier()

        a = trace_with(ScalaTraceTracer, kernel, 4)
        b = trace_with(ScalaTraceTracer, other, 4)
        d = diff_traces(a, b)
        assert d.similarity() < 0.2
        assert d.missing_in_a and d.missing_in_b

    def test_iteration_count_difference(self):
        a = trace_with(ScalaTraceTracer, lambda c, t: kernel(c, t, steps=4), 4)
        b = trace_with(ScalaTraceTracer, lambda c, t: kernel(c, t, steps=8), 4)
        d = diff_traces(a, b)
        assert 0.4 < d.similarity() < 0.6
        assert not d.missing_in_a and not d.missing_in_b

    def test_report_renders(self):
        a = trace_with(ScalaTraceTracer, kernel, 4)
        b = trace_with(ScalaTraceTracer, lambda c, t: kernel(c, t, steps=4), 4)
        text = diff_traces(a, b).report()
        assert "similarity" in text

    def test_empty_traces(self):
        from repro.scalatrace import Trace

        d = diff_traces(Trace(), Trace())
        assert d.similarity() == 1.0


class TestOnlineTraceEquivalence:
    """The paper's claim: the online trace 'incrementally expands to an
    equivalent output of MPI_Finalize in the original ScalaTrace'."""

    def test_chameleon_vs_scalatrace_equivalence(self):
        st = trace_with(ScalaTraceTracer, kernel, 8)
        ch = trace_with(
            lambda ctx: ChameleonTracer(ctx, ChameleonConfig(k=4)), kernel, 8
        )
        d = diff_traces(st, ch)
        # every event kind present on both sides
        assert not d.missing_in_a and not d.missing_in_b
        # rank coverage identical per event kind
        assert d.rank_coverage_ok()
        # occurrence counts match closely (Chameleon's flush segmentation
        # can split loops but never drops or duplicates timesteps)
        assert d.similarity() >= 0.95

    def test_uniform_workload_exact_equivalence(self):
        async def uniform(ctx, tr):
            for _ in range(10):
                with ctx.frame("k"):
                    await tr.allreduce(1.0, size=8)
                await tr.marker()

        st = trace_with(ScalaTraceTracer, uniform, 8)
        ch = trace_with(
            lambda ctx: ChameleonTracer(ctx, ChameleonConfig(k=1)), uniform, 8
        )
        d = diff_traces(st, ch)
        assert not d.missing_in_a and not d.missing_in_b
        assert d.rank_coverage_ok()
