"""Endpoint encodings: relative/absolute constants and strided patterns."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scalatrace import EndpointStat, Pattern


def stat(absolute, rank=0):
    return EndpointStat.of(absolute, rank)


def chain(rank, absolutes):
    """Fold a stream of per-iteration endpoints into one stat (intra-rank)."""
    s = stat(absolutes[0], rank)
    for a in absolutes[1:]:
        nxt = stat(a, rank)
        assert s.can_merge(nxt), f"cannot extend with {a}"
        s.merge(nxt)
    return s


class TestConstantEncodings:
    def test_single_observation_has_all_encodings(self):
        s = stat(5, rank=3)
        assert s.rel == 2
        assert s.abs_ == 5
        assert s.pattern is not None

    def test_repeated_constant_stays_constant(self):
        s = chain(3, [5, 5, 5, 5])
        assert s.rel == 2 and s.abs_ == 5

    def test_cross_rank_relative_survives(self):
        # rank 0 -> 1 and rank 4 -> 5: rel +1 survives, abs does not
        a, b = stat(1, 0), stat(5, 4)
        assert a.can_merge(b)
        a.merge(b)
        assert a.rel == 1
        assert a.abs_ is None

    def test_cross_rank_absolute_survives(self):
        # workers 3 and 7 both talk to rank 0 (hub pattern); cross-rank
        # merges disable pattern chaining
        a, b = stat(0, 3), stat(0, 7)
        a.merge(b, allow_chain=False)
        assert a.abs_ == 0
        assert a.rel is None
        assert a.pattern is None

    def test_cross_rank_chain_forbidden(self):
        # different rel AND different abs: without chaining these reject
        a, b = stat(2, 5), stat(1, 8)  # rel -3 vs -7, abs 2 vs 1
        assert not a.can_merge(b, allow_chain=False)
        assert a.can_merge(b, allow_chain=True)  # intra-stream could chain

    def test_incompatible_constants_reject(self):
        a = chain(1, [0, 0])  # abs 0 / rel -1, closed constant cycle
        b = chain(5, [9, 9])  # abs 9 / rel +4
        assert not a.can_merge(b)
        with pytest.raises(ValueError):
            a.merge(b)


class TestStridedPatterns:
    def test_master_fanout_chain(self):
        # rank 0 sends to 1, 2, 3, 4 in a loop
        s = chain(0, [1, 2, 3, 4])
        assert s.rel is None and s.abs_ is None
        p = s.pattern
        assert (p.start, p.stride, p.length) == (1, 1, 4)
        assert not p.closed

    def test_pattern_wraps_and_closes(self):
        s = chain(0, [1, 2, 3, 1, 2, 3])
        p = s.pattern
        assert (p.start, p.stride, p.length, p.closed) == (1, 1, 3, True)
        assert p.n == 6

    def test_closed_pattern_rejects_off_cycle(self):
        s = chain(0, [1, 2, 1, 2])
        assert not s.can_merge(stat(9, 0))

    def test_identical_complete_cycles_merge(self):
        a = chain(0, [1, 2, 3])
        b = chain(0, [1, 2, 3])
        assert a.can_merge(b)
        a.merge(b)
        assert a.pattern.n == 6
        assert a.pattern.closed

    def test_different_cycles_reject(self):
        a = chain(0, [1, 2, 3, 1])  # closed length 3
        b = chain(0, [2, 3, 4, 2])  # closed length 3, different start
        assert not a.can_merge(b)

    def test_negative_stride(self):
        s = chain(10, [13, 11, 9])
        p = s.pattern
        assert (p.start, p.stride, p.length) == (3, -2, 3)

    def test_resolution_of_pattern(self):
        s = chain(0, [1, 2, 3, 1])  # closed cycle of 3
        assert s.resolve(rank=0, occurrence=0) == 1
        assert s.resolve(rank=0, occurrence=1) == 2
        assert s.resolve(rank=0, occurrence=2) == 3
        assert s.resolve(rank=0, occurrence=3) == 1
        # replayed by another rank: transposed
        assert s.resolve(rank=10, occurrence=1) == 12

    @given(st.integers(0, 20), st.integers(1, 8), st.integers(-3, 3).filter(lambda x: x != 0), st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_streams_always_chain(self, rank, start, stride, n):
        absolutes = [rank + start + stride * i for i in range(n)]
        s = chain(rank, absolutes)
        p = s.pattern
        assert p is not None
        assert p.length == n and p.stride == stride

    @given(st.integers(0, 20), st.integers(1, 5), st.integers(2, 5), st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_cyclic_streams_resolve_roundtrip(self, rank, start, period, reps):
        cycle = [rank + start + i for i in range(period)]
        s = chain(rank, cycle * reps)
        for i, a in enumerate(cycle * reps):
            assert s.resolve(rank, i) == a


class TestResolutionPriority:
    def test_relative_preferred(self):
        s = stat(6, rank=5)  # rel +1, abs 6
        assert s.resolve(rank=2, occurrence=0) == 3  # rank + 1

    def test_absolute_used_when_relative_dead(self):
        a, b = stat(0, 3), stat(0, 7)
        a.merge(b, allow_chain=False)
        assert a.resolve(rank=5, occurrence=0) == 0


class TestSerialization:
    def test_roundtrip_constant(self):
        s = chain(2, [3, 3, 3])
        t = EndpointStat.from_text(s.to_text())
        assert (t.rel, t.abs_) == (s.rel, s.abs_)
        assert t.pattern.start == s.pattern.start

    def test_roundtrip_pattern(self):
        s = chain(0, [1, 2, 3, 1, 2, 3])
        t = EndpointStat.from_text(s.to_text())
        p, q = s.pattern, t.pattern
        assert (p.start, p.stride, p.length, p.closed, p.n) == (
            q.start,
            q.stride,
            q.length,
            q.closed,
            q.n,
        )

    def test_roundtrip_invalidated(self):
        a, b = stat(0, 3), stat(0, 7)
        a.merge(b)
        t = EndpointStat.from_text(a.to_text())
        assert t.rel is None and t.abs_ == 0

    def test_no_spaces_in_text(self):
        assert " " not in chain(0, [1, 2, 3]).to_text()
