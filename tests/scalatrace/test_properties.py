"""Cross-module property tests on the compression stack's invariants."""

from hypothesis import given, settings, strategies as st

from repro.scalatrace import (
    EndpointStat,
    EventRecord,
    IntraCompressor,
    Op,
    RankSet,
    Trace,
    expand,
    merge_many,
    merge_traces,
)

# -- generators --------------------------------------------------------------

#: a small alphabet of call sites with associated ops / endpoint offsets
SITES = {
    1: (Op.SEND, 1),
    2: (Op.RECV, -1),
    3: (Op.BARRIER, None),
    4: (Op.ALLREDUCE, None),
    5: (Op.SEND, 2),
}


def make_event(site: int, rank: int, dt: float = 0.0) -> EventRecord:
    op, off = SITES[site]
    dest = None
    src = None
    if op is Op.SEND and off is not None:
        dest = EndpointStat.of(rank + off, rank)
    if op is Op.RECV and off is not None:
        src = EndpointStat.of(rank + off, rank)
    rec = EventRecord(
        op=op,
        stack_sig=site * 0x9E3779B97F4A7C15 & ((1 << 64) - 1),
        comm_id=1,
        src=src,
        dest=dest,
        participants=RankSet.single(rank),
    )
    rec.count.add(64)
    rec.tag.add(0)
    rec.dhist.record(dt)
    return rec


def compress(stream, rank):
    c = IntraCompressor()
    for site in stream:
        c.append(make_event(site, rank))
    return c


streams = st.lists(st.sampled_from(sorted(SITES)), min_size=1, max_size=40)


# -- properties --------------------------------------------------------------


class TestCompressionInvariants:
    @given(streams)
    @settings(max_examples=80, deadline=None)
    def test_lossless_event_sequence(self, stream):
        c = compress(stream, rank=0)
        sites = [rec.stack_sig for rec in expand(c.nodes)]
        expected = [make_event(s, 0).stack_sig for s in stream]
        assert sites == expected

    @given(streams)
    @settings(max_examples=80, deadline=None)
    def test_delta_time_mass_preserved(self, stream):
        c = IntraCompressor()
        total = 0.0
        for i, site in enumerate(stream):
            dt = 0.001 * (i + 1)
            total += dt
            c.append(make_event(site, 0, dt=dt))
        mass = sum(l.record.dhist.sum for l in Trace(nodes=c.nodes).leaves())
        assert abs(mass - total) < 1e-9

    @given(streams, st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_spmd_merge_covers_all_ranks(self, stream, nprocs):
        traces = [compress(stream, rank=r).take_nodes() for r in range(nprocs)]
        merged = merge_many(traces)
        covered = set()
        for node in Trace(nodes=merged).leaves():
            covered.update(node.record.participants.ranks())
        assert covered == set(range(nprocs))

    @given(streams)
    @settings(max_examples=50, deadline=None)
    def test_merge_with_empty_is_identity(self, stream):
        nodes = compress(stream, 0).take_nodes()
        before = [r.stack_sig for r in expand(nodes)]
        assert [r.stack_sig for r in expand(merge_traces(nodes, []))] == before
        nodes2 = compress(stream, 0).take_nodes()
        assert [r.stack_sig for r in expand(merge_traces([], nodes2))] == before

    @given(streams, st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_total_event_mass(self, stream, nprocs):
        """The merged trace accounts for every (rank, event) pair exactly
        once: the sum of dhist totals equals nprocs * len(stream)."""
        traces = [compress(stream, rank=r).take_nodes() for r in range(nprocs)]
        merged = merge_many(traces)
        mass = sum(
            l.record.dhist.total for l in Trace(nodes=merged).leaves()
        )
        assert mass == nprocs * len(stream)

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_serialization_roundtrip_preserves_everything(self, stream):
        c = compress(stream, rank=0)
        t = Trace(nodes=c.take_nodes(), nprocs=4)
        t2 = Trace.deserialize(t.serialize())
        assert t2.expanded_count() == t.expanded_count()
        assert t2.leaf_count() == t.leaf_count()
        for a, b in zip(t.leaves(), t2.leaves()):
            assert a.record.static_key() == b.record.static_key()
            assert a.record.dhist.total == b.record.dhist.total
            assert (a.record.dest is None) == (b.record.dest is None)
            if a.record.dest is not None:
                assert a.record.dest.rel == b.record.dest.rel
                assert a.record.dest.abs_ == b.record.dest.abs_

    @given(streams, st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_merged_trace_size_sublinear_in_ranks(self, stream, nprocs):
        """The point of ScalaTrace: the global trace does not grow with P
        for SPMD streams (identical behaviour merges)."""
        single = Trace(nodes=compress(stream, 0).take_nodes()).size_bytes()
        traces = [compress(stream, rank=r).take_nodes() for r in range(nprocs)]
        merged_size = Trace(nodes=merge_many(traces)).size_bytes()
        # allow slack for histogram bins; must not be ~nprocs * single
        assert merged_size < single * 2 + 512
