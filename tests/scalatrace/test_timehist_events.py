"""Delta-time histograms, ParamStat, and EventRecord merging."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.scalatrace import DeltaHistogram, EventRecord, Op, ParamStat, RankSet

DT = st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False)


class TestDeltaHistogram:
    def test_empty(self):
        h = DeltaHistogram()
        assert h.total == 0
        assert h.mean == 0.0
        assert h.sample() == 0.0

    def test_record_updates_stats(self):
        h = DeltaHistogram()
        h.record(1.0)
        h.record(3.0)
        assert h.total == 2
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeltaHistogram().record(-0.1)

    @given(st.lists(DT, min_size=1, max_size=100))
    def test_mean_matches_stream(self, dts):
        h = DeltaHistogram()
        for dt in dts:
            h.record(dt)
        assert h.mean == pytest.approx(sum(dts) / len(dts))
        assert h.sample() == h.mean

    @given(st.lists(DT, min_size=1, max_size=50), st.lists(DT, min_size=1, max_size=50))
    def test_merge_equals_combined(self, xs, ys):
        a, b, c = DeltaHistogram(), DeltaHistogram(), DeltaHistogram()
        for x in xs:
            a.record(x)
            c.record(x)
        for y in ys:
            b.record(y)
            c.record(y)
        a.merge(b)
        assert a.total == c.total
        assert a.counts == c.counts
        assert a.mean == pytest.approx(c.mean)

    def test_size_bytes_sparse(self):
        h = DeltaHistogram()
        empty = h.size_bytes()
        h.record(1e-6)
        h.record(1e-6)
        one_bin = h.size_bytes()
        h.record(1.0)
        two_bins = h.size_bytes()
        assert empty < one_bin < two_bins

    @given(st.lists(DT, min_size=0, max_size=30))
    def test_text_roundtrip(self, dts):
        h = DeltaHistogram()
        for dt in dts:
            h.record(dt)
        h2 = DeltaHistogram.from_text(h.to_text())
        assert h2.counts == h.counts
        assert h2.total == h.total
        assert h2.sum == pytest.approx(h.sum)

    def test_copy_independent(self):
        h = DeltaHistogram()
        h.record(1.0)
        c = h.copy()
        c.record(2.0)
        assert h.total == 1 and c.total == 2


class TestParamStat:
    def test_of_and_add(self):
        s = ParamStat.of(10)
        s.add(20)
        assert s.n == 2 and s.mean == 15 and s.min == 10 and s.max == 20

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=60))
    def test_stats_match_stream(self, xs):
        s = ParamStat()
        for x in xs:
            s.add(x)
        assert s.min == min(xs) and s.max == max(xs)
        assert s.mean == pytest.approx(sum(xs) / len(xs))

    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=30),
        st.lists(st.integers(0, 10**6), min_size=1, max_size=30),
    )
    def test_merge(self, xs, ys):
        a, b = ParamStat(), ParamStat()
        for x in xs:
            a.add(x)
        for y in ys:
            b.add(y)
        a.merge(b)
        allv = xs + ys
        assert a.n == len(allv)
        assert a.mean == pytest.approx(sum(allv) / len(allv))

    def test_empty_merge_noop(self):
        a = ParamStat.of(5)
        a.merge(ParamStat())
        assert a.n == 1

    def test_text_roundtrip(self):
        s = ParamStat.of(42)
        s.add(7)
        t = ParamStat.from_text(s.to_text())
        assert (t.n, t.mean, t.min, t.max) == (s.n, s.mean, s.min, s.max)

    def test_text_roundtrip_empty(self):
        s = ParamStat()
        t = ParamStat.from_text(s.to_text())
        assert t.n == 0 and math.isinf(t.min)


def _record(rank=0, op=Op.SEND, sig=111, dest_off=1):
    from repro.scalatrace import EndpointStat

    r = EventRecord(
        op=op,
        stack_sig=sig,
        comm_id=1,
        dest=EndpointStat.of(rank + dest_off, rank),
        participants=RankSet.single(rank),
    )
    r.count.add(800)
    r.tag.add(5)
    r.dhist.record(0.001)
    return r


class TestEventRecord:
    def test_match_key_fields(self):
        assert _record().match_key() == _record(rank=3).match_key()
        assert _record().match_key() != _record(op=Op.RECV).match_key()
        assert _record().match_key() != _record(sig=222).match_key()
        assert _record().match_key() != _record(dest_off=2).match_key()

    def test_merge_unions_participants(self):
        a, b = _record(rank=0), _record(rank=5)
        a.merge(b)
        assert a.participants.ranks() == (0, 5)
        assert a.count.n == 2
        assert a.dhist.total == 2

    def test_merge_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            _record().merge(_record(op=Op.RECV))

    def test_copy_deep(self):
        a = _record()
        c = a.copy()
        c.merge(_record(rank=9))
        assert a.participants.ranks() == (0,)
        assert c.participants.ranks() == (0, 9)

    def test_size_bytes_grows_with_histogram(self):
        a = _record()
        base = a.size_bytes()
        a.dhist.record(100.0)  # new bin
        assert a.size_bytes() > base

    def test_collective_vs_p2p_flags(self):
        assert Op.BARRIER.is_collective and not Op.BARRIER.is_p2p
        assert Op.SEND.is_p2p and not Op.SEND.is_collective
        assert Op.MARKER.is_collective
