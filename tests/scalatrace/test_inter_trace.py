"""Inter-node merging and Trace container/serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scalatrace import (
    EventNode,
    EventRecord,
    IntraCompressor,
    LoopNode,
    Op,
    RankSet,
    Trace,
    WorkMeter,
    expand,
    merge_many,
    merge_traces,
)


def ev(sig, rank=0, op=Op.SEND, dest_off=1):
    from repro.scalatrace import EndpointStat

    dest = (
        EndpointStat.of(rank + dest_off, rank)
        if op.is_p2p and dest_off is not None
        else None
    )
    r = EventRecord(
        op=op,
        stack_sig=sig,
        comm_id=1,
        dest=dest,
        participants=RankSet.single(rank),
    )
    r.count.add(32)
    r.tag.add(0)
    r.dhist.record(0.0)
    return r


def compress(sigs, rank):
    c = IntraCompressor()
    for s in sigs:
        c.append(ev(s, rank=rank))
    return c.take_nodes()


class TestMergeTraces:
    def test_identical_traces_merge_to_one(self):
        a = compress([1, 2, 3], rank=0)
        b = compress([1, 2, 3], rank=1)
        merged = merge_traces(a, b)
        assert len(merged) == 3
        for node in merged:
            assert node.record.participants.ranks() == (0, 1)

    def test_empty_sides(self):
        a = compress([1], rank=0)
        assert merge_traces(a, []) == a
        assert merge_traces([], a) == a

    def test_disjoint_traces_concatenate(self):
        a = compress([1, 2], rank=0)
        b = compress([3, 4], rank=1)
        merged = merge_traces(a, b)
        sigs = [n.record.stack_sig for n in merged]
        assert sorted(sigs) == [1, 2, 3, 4]

    def test_partial_overlap_aligns(self):
        a = compress([1, 2, 9, 3], rank=0)
        b = compress([1, 2, 3], rank=1)
        merged = merge_traces(a, b)
        by_sig = {n.record.stack_sig: n.record for n in merged}
        assert by_sig[1].participants.ranks() == (0, 1)
        assert by_sig[9].participants.ranks() == (0,)
        assert by_sig[3].participants.ranks() == (0, 1)

    def test_loops_merge_recursively(self):
        a = compress([1, 2] * 10, rank=0)
        b = compress([1, 2] * 10, rank=2)
        merged = merge_traces(a, b)
        assert len(merged) == 1
        loop = merged[0]
        assert isinstance(loop, LoopNode) and loop.iters == 10
        for leaf in loop.body:
            assert leaf.record.participants.ranks() == (0, 2)
            assert leaf.record.dhist.total == 20

    def test_loops_with_different_iters_do_not_merge(self):
        a = compress([1] * 5, rank=0)
        b = compress([1] * 7, rank=1)
        merged = merge_traces(a, b)
        assert len(merged) == 2

    def test_meter_counts_quadratic_work(self):
        meter_small, meter_large = WorkMeter(), WorkMeter()
        a_small = compress(list(range(5)), 0)
        b_small = compress(list(range(5, 10)), 1)
        merge_traces(a_small, b_small, meter_small)
        a_large = compress(list(range(20)), 0)
        b_large = compress(list(range(20, 40)), 1)
        merge_traces(a_large, b_large, meter_large)
        # disjoint traces: full LCS table, so 16x the comparisons for 4x n
        assert meter_large.comparisons > 8 * meter_small.comparisons

    def test_merge_many_all_ranks(self):
        traces = [compress([1, 2, 3], rank=r) for r in range(8)]
        merged = merge_many(traces)
        assert len(merged) == 3
        for node in merged:
            assert node.record.participants.ranks() == tuple(range(8))

    @given(st.lists(st.integers(1, 3), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_merged_trace_contains_each_ranks_stream(self, sigs):
        """Merging preserves per-rank event streams for identical SPMD
        traces: expanding the merged trace reproduces the stream."""
        a = compress(sigs, rank=0)
        b = compress(sigs, rank=1)
        merged = merge_traces(a, b)
        assert [r.stack_sig for r in expand(merged)] == sigs


class TestTrace:
    def make_trace(self):
        nodes = compress([1, 2] * 6 + [3], rank=0)
        return Trace(nodes=nodes, origin=RankSet.single(0), nprocs=4)

    def test_counts(self):
        t = self.make_trace()
        assert t.leaf_count() == 3
        assert t.expanded_count() == 13
        assert t.compression_ratio() == pytest.approx(13 / 3)

    def test_distinct_signatures(self):
        assert self.make_trace().distinct_stack_signatures() == {1, 2, 3}

    def test_copy_independent(self):
        t = self.make_trace()
        c = t.copy()
        c.nodes.clear()
        assert t.leaf_count() == 3

    def test_serialize_roundtrip(self):
        t = self.make_trace()
        text = t.serialize()
        t2 = Trace.deserialize(text)
        assert t2.nprocs == 4
        assert t2.leaf_count() == t.leaf_count()
        assert t2.expanded_count() == t.expanded_count()
        assert [r.stack_sig for r in t2.events()] == [
            r.stack_sig for r in t.events()
        ]
        # statistics survive the roundtrip
        leaves, leaves2 = list(t.leaves()), list(t2.leaves())
        for l1, l2 in zip(leaves, leaves2):
            assert l1.record.match_key() == l2.record.match_key()
            assert l1.record.dhist.total == l2.record.dhist.total
            assert l1.record.count.mean == l2.record.count.mean

    def test_save_load(self, tmp_path):
        t = self.make_trace()
        path = tmp_path / "trace.st"
        t.save(str(path))
        assert Trace.load(str(path)).expanded_count() == t.expanded_count()

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(ValueError):
            Trace.deserialize("not a trace")
        with pytest.raises(ValueError):
            Trace.deserialize("#scalatrace v1 nprocs=1 origin=0\nloop 5 {\n")

    def test_empty_trace(self):
        t = Trace()
        assert t.leaf_count() == 0
        assert t.compression_ratio() == 1.0
        t2 = Trace.deserialize(t.serialize())
        assert t2.leaf_count() == 0

    def test_collective_events_roundtrip(self):
        rec = EventRecord(
            op=Op.ALLREDUCE,
            stack_sig=42,
            comm_id=2,
            root=0,
            participants=RankSet.contiguous(0, 16),
        )
        rec.count.add(8)
        rec.tag.add(0)
        rec.dhist.record(0.5)
        t = Trace(nodes=[EventNode(rec)], nprocs=16)
        t2 = Trace.deserialize(t.serialize())
        leaf = next(t2.leaves())
        assert leaf.record.op is Op.ALLREDUCE
        assert leaf.record.root == 0
        assert leaf.record.participants.count == 16
