"""ScalaTrace tracer end-to-end over the simulated runtime."""

import pytest

from repro.scalatrace import Op, ScalaTraceTracer, Trace, ZERO_COSTS
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def run_traced(prog, nprocs, network=ZERO_COST, **tracer_kw):
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx, **tracer_kw)
        ret = await prog(ctx, tracer)
        trace = await tracer.finalize()
        return {"trace": trace, "ret": ret, "stats": tracer.stats, "clock": ctx.clock}

    return run_spmd(main, nprocs, config=SimConfig(network=network))


class TestBasicTracing:
    def test_ring_trace_merges_to_single_events(self):
        async def prog(ctx, tr):
            peer = (ctx.rank + 1) % ctx.size
            src = (ctx.rank - 1) % ctx.size
            for _ in range(5):
                await tr.sendrecv(peer, b"x" * 16, source=src)
            return None

        res = run_traced(prog, 8)
        trace = res.results[0]["trace"]
        assert trace is not None
        assert all(r["trace"] is None for r in res.results[1:])
        # One call site, but the ring wraparound gives three distinct
        # relative encodings: interior (+1,-1), rank 0 (+1,+7), rank 7
        # (-7,-1) — exactly ScalaTrace's location-independent behaviour.
        assert trace.leaf_count() == 3
        leaves = list(trace.leaves())
        assert all(l.record.op is Op.SENDRECV for l in leaves)
        interior = max(leaves, key=lambda l: l.record.participants.count)
        assert interior.record.participants.ranks() == (1, 2, 3, 4, 5, 6)
        assert interior.record.dest_offset == 1
        assert interior.record.src_offset == -1
        # 5 iterations x 3 distinct encodings
        assert trace.expanded_count() == 15

    def test_relative_endpoint_encoding(self):
        async def prog(ctx, tr):
            if ctx.rank + 1 < ctx.size:
                await tr.send(ctx.rank + 1, None, size=8)
            if ctx.rank > 0:
                await tr.recv(ctx.rank - 1)

        res = run_traced(prog, 6)
        trace = res.results[0]["trace"]
        leaves = {l.record.op: l.record for l in trace.leaves()}
        send = leaves[Op.SEND]
        assert send.dest_offset == 1
        # ranks 0..4 send; 5 has no +1 neighbour
        assert send.participants.ranks() == (0, 1, 2, 3, 4)
        recv = leaves[Op.RECV]
        assert recv.src_offset == -1
        assert recv.participants.ranks() == (1, 2, 3, 4, 5)

    def test_collectives_merge_across_ranks(self):
        async def prog(ctx, tr):
            for _ in range(3):
                await tr.allreduce(1.0)
                await tr.barrier()

        res = run_traced(prog, 4)
        trace = res.results[0]["trace"]
        assert trace.leaf_count() == 2
        assert trace.expanded_count() == 6
        for leaf in trace.leaves():
            assert leaf.record.participants.count == 4

    def test_different_call_sites_stay_distinct(self):
        async def prog(ctx, tr):
            await tr.barrier()  # site A
            await tr.barrier()  # site B

        res = run_traced(prog, 2)
        trace = res.results[0]["trace"]
        assert trace.leaf_count() == 2
        assert len(trace.distinct_stack_signatures()) == 2

    def test_isend_irecv_traced(self):
        async def prog(ctx, tr):
            peer = 1 - ctx.rank
            sreq = tr.isend(peer, None, tag=1, size=8)
            rreq = tr.irecv(peer, tag=1)
            await tr.wait(rreq)
            await tr.wait(sreq)

        res = run_traced(prog, 2)
        trace = res.results[0]["trace"]
        ops = {l.record.op for l in trace.leaves()}
        assert ops == {Op.ISEND, Op.IRECV}

    def test_delta_times_recorded(self):
        async def prog(ctx, tr):
            for _ in range(4):
                ctx.compute(0.25)
                await tr.barrier()

        res = run_traced(prog, 2, tracer_kw_sentinel=None) if False else run_traced(prog, 2)
        trace = res.results[0]["trace"]
        leaf = next(trace.leaves())
        # 4 iterations x 2 ranks, each preceded by 0.25s compute
        assert leaf.record.dhist.total == 8
        assert leaf.record.dhist.mean == pytest.approx(0.25, rel=0.2)


class TestTracingControl:
    def test_disabled_tracer_records_nothing(self):
        async def prog(ctx, tr):
            tr.enabled = False
            await tr.barrier()
            await tr.allreduce(1)
            tr.enabled = True
            await tr.barrier()

        res = run_traced(prog, 2)
        trace = res.results[0]["trace"]
        assert trace.leaf_count() == 1
        stats = res.results[0]["stats"]
        assert stats.events_skipped == 2
        assert stats.events_recorded == 1

    def test_disabled_tracing_costs_nothing(self):
        async def prog(ctx, tr):
            tr.enabled = ctx.rank == 0
            for _ in range(50):
                await tr.allreduce(1)
            return ctx.clock

        res = run_traced(prog, 2)
        r0, r1 = res.results
        assert r1["stats"].record_time == 0.0
        assert r0["stats"].record_time > 0.0

    def test_zero_costs_charge_no_time(self):
        async def prog(ctx, tr):
            for _ in range(10):
                await tr.barrier()
            return None

        res = run_traced(prog, 2, costs=ZERO_COSTS)
        assert res.results[0]["stats"].record_time == 0.0


class TestFinalizeMerge:
    def test_finalize_produces_global_trace_on_rank0(self):
        async def prog(ctx, tr):
            for _ in range(3):
                if ctx.rank % 2 == 0 and ctx.rank + 1 < ctx.size:
                    await tr.send(ctx.rank + 1, None, size=8)
                elif ctx.rank % 2 == 1:
                    await tr.recv(ctx.rank - 1)
                await tr.barrier()

        res = run_traced(prog, 8)
        trace = res.results[0]["trace"]
        assert isinstance(trace, Trace)
        assert trace.origin.ranks() == tuple(range(8))
        ops = {l.record.op for l in trace.leaves()}
        assert ops == {Op.SEND, Op.RECV, Op.BARRIER}

    def test_merge_stats_tracked(self):
        async def prog(ctx, tr):
            await tr.barrier()

        res = run_traced(prog, 16)
        # interior tree nodes did merging work
        stats0 = res.results[0]["stats"]
        assert stats0.merge_time > 0.0

    def test_larger_comm_means_more_merge_comm(self):
        async def prog(ctx, tr):
            for i in range(10):
                await tr.allreduce(i)

        small = run_traced(prog, 4).results[0]["stats"].merge_comm_time
        large = run_traced(prog, 64).results[0]["stats"].merge_comm_time
        # rank 0 receives from more children / bigger subtrees take longer
        assert large >= small

    def test_tree_arity_configurable(self):
        async def prog(ctx, tr):
            await tr.barrier()

        res = run_traced(prog, 9, tree_arity=4)
        assert res.results[0]["trace"].leaf_count() == 1
