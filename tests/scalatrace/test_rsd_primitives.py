"""RSD node primitives: same_shape, merge_nodes, fold_tail, signatures."""

import pytest

from repro.scalatrace import (
    EndpointStat,
    EventNode,
    EventRecord,
    LoopNode,
    Op,
    RankSet,
    WorkMeter,
    expand,
    fold_tail,
    iter_leaves,
    merge_nodes,
    same_shape,
    shape_signature,
)


def leaf(sig=1, rank=0, dest_off=1, op=Op.SEND):
    rec = EventRecord(
        op=op,
        stack_sig=sig,
        comm_id=1,
        dest=EndpointStat.of(rank + dest_off, rank) if op.is_p2p else None,
        participants=RankSet.single(rank),
    )
    rec.count.add(8)
    rec.tag.add(0)
    rec.dhist.record(0.0)
    return EventNode(rec)


class TestSameShape:
    def test_event_nodes(self):
        assert same_shape(leaf(1), leaf(1))
        assert not same_shape(leaf(1), leaf(2))
        assert not same_shape(leaf(1, op=Op.SEND), leaf(1, op=Op.BARRIER))

    def test_loop_nodes_match_iters(self):
        a = LoopNode(3, [leaf(1)])
        b = LoopNode(3, [leaf(1)])
        c = LoopNode(4, [leaf(1)])
        assert same_shape(a, b)
        assert not same_shape(a, c, match_iters=True)
        assert same_shape(a, c, match_iters=False)

    def test_mixed_types_never_match(self):
        assert not same_shape(leaf(1), LoopNode(2, [leaf(1)]))

    def test_meter_counts_comparisons(self):
        m = WorkMeter()
        same_shape(LoopNode(2, [leaf(1), leaf(2)]),
                   LoopNode(2, [leaf(1), leaf(2)]), m)
        assert m.comparisons >= 3  # loop + 2 body nodes


class TestMergeNodes:
    def test_merges_stats_recursively(self):
        a = LoopNode(2, [leaf(1, rank=0)])
        b = LoopNode(2, [leaf(1, rank=5)])
        merge_nodes(a, b)
        inner = a.body[0]
        assert inner.record.participants.ranks() == (0, 5)
        assert inner.record.dhist.total == 2

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge_nodes(LoopNode(2, [leaf(1)]), leaf(1))
        with pytest.raises(ValueError):
            merge_nodes(LoopNode(2, [leaf(1)]), LoopNode(2, [leaf(1), leaf(2)]))


class TestShapeSignature:
    def test_stable_and_discriminating(self):
        assert shape_signature(leaf(1)) == shape_signature(leaf(1))
        assert shape_signature(leaf(1)) != shape_signature(leaf(2))
        l1 = LoopNode(2, [leaf(1)])
        l2 = LoopNode(3, [leaf(1)])
        assert shape_signature(l1) != shape_signature(l2)


class TestFoldTail:
    def test_create_and_absorb(self):
        m = WorkMeter()
        nodes = [leaf(1), leaf(1)]
        fold_tail(nodes, 8, m)
        assert len(nodes) == 1 and nodes[0].iters == 2
        nodes.append(leaf(1))
        fold_tail(nodes, 8, m)
        assert nodes[0].iters == 3

    def test_match_participants_blocks_cross_cluster_fold(self):
        m = WorkMeter()
        a = leaf(1, rank=0)
        b = leaf(1, rank=1)  # same site, different participant
        nodes = [a, b]
        fold_tail(nodes, 8, m, match_participants=True)
        assert len(nodes) == 2  # refused
        # without the guard the legacy behaviour folds them
        nodes2 = [leaf(1, rank=0), leaf(1, rank=1)]
        fold_tail(nodes2, 8, m, match_participants=False)
        assert len(nodes2) == 1

    def test_match_participants_allows_equal_populations(self):
        m = WorkMeter()
        a = leaf(1, rank=0)
        a.record.participants = RankSet([0, 1, 2])
        b = leaf(1, rank=0)
        b.record.participants = RankSet([0, 1, 2])
        nodes = [a, b]
        fold_tail(nodes, 8, m, match_participants=True)
        assert len(nodes) == 1 and nodes[0].iters == 2

    def test_iter_leaves_and_expand_consistency(self):
        nodes = [LoopNode(3, [leaf(1), LoopNode(2, [leaf(2)])]), leaf(3)]
        leaves = list(iter_leaves(nodes))
        assert [l.record.stack_sig for l in leaves] == [1, 2, 3]
        stream = [r.stack_sig for r in expand(nodes)]
        assert stream == [1, 2, 2, 1, 2, 2, 1, 2, 2, 3]
