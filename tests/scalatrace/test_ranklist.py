"""Ranklist factorization and RankSet algebra (heavily property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.scalatrace import Ranklist, RankSet


class TestRanklist:
    def test_singleton(self):
        rl = Ranklist(5)
        assert rl.count == 1
        assert list(rl.members()) == [5]
        assert rl.dimension == 0

    def test_one_dimension(self):
        rl = Ranklist(2, ((4, 3),))
        assert list(rl.members()) == [2, 5, 8, 11]
        assert rl.count == 4

    def test_two_dimensions_block(self):
        # 2x3 block of a 10-wide grid starting at rank 20
        rl = Ranklist(20, ((2, 10), (3, 1)))
        assert list(rl.members()) == [20, 21, 22, 30, 31, 32]
        assert rl.count == 6
        assert rl.dimension == 2

    def test_contains(self):
        rl = Ranklist(0, ((4, 2),))
        assert 6 in rl and 3 not in rl

    def test_validation(self):
        with pytest.raises(ValueError):
            Ranklist(-1)
        with pytest.raises(ValueError):
            Ranklist(0, ((1, 5),))

    def test_str_format(self):
        assert str(Ranklist(0, ((8, 1),))) == "<1 0 8:1>"

    def test_size_bytes_constant_in_member_count(self):
        small = Ranklist(0, ((4, 1),))
        large = Ranklist(0, ((1024, 1),))
        assert small.size_bytes() == large.size_bytes()


class TestRankSetFactorization:
    def test_contiguous_all_ranks_single_list(self):
        rs = RankSet.contiguous(0, 1024)
        assert len(rs.ranklists) == 1
        assert rs.ranklists[0] == Ranklist(0, ((1024, 1),))

    def test_strided_set(self):
        rs = RankSet(range(0, 64, 4))
        assert len(rs.ranklists) == 1
        assert rs.ranklists[0].dims == ((16, 4),)

    def test_grid_block_two_dims(self):
        ranks = [r * 16 + c for r in range(4) for c in range(4)]
        rs = RankSet(ranks)
        assert len(rs.ranklists) == 1
        rl = rs.ranklists[0]
        assert rl.count == 16
        assert rl.dimension == 2

    def test_three_dims(self):
        ranks = sorted(
            z * 100 + y * 10 + x for z in range(2) for y in range(3) for x in range(4)
        )
        rs = RankSet(ranks)
        assert len(rs.ranklists) == 1
        assert rs.ranklists[0].dimension == 3

    def test_irregular_falls_back_to_runs(self):
        rs = RankSet([0, 1, 2, 10, 11, 12, 99])
        assert rs.ranks() == (0, 1, 2, 10, 11, 12, 99)
        assert len(rs.ranklists) >= 2

    def test_duplicates_removed(self):
        rs = RankSet([3, 3, 1, 1])
        assert rs.ranks() == (1, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RankSet([-1, 0])

    @given(st.sets(st.integers(0, 2000), min_size=1, max_size=120))
    def test_members_roundtrip(self, ranks):
        rs = RankSet(ranks)
        covered = [m for rl in rs.ranklists for m in rl.members()]
        assert sorted(covered) == sorted(ranks)
        assert rs.count == len(ranks)

    @given(st.integers(0, 50), st.integers(2, 64), st.integers(1, 9))
    def test_arithmetic_always_single_list(self, start, n, stride):
        rs = RankSet(range(start, start + n * stride, stride))
        assert len(rs.ranklists) == 1


class TestRankSetAlgebra:
    def test_union_disjoint(self):
        a = RankSet([0, 1, 2, 3])
        b = RankSet([4, 5, 6, 7])
        u = a.union(b)
        assert u.ranks() == tuple(range(8))
        assert len(u.ranklists) == 1

    def test_union_overlap_dedupes(self):
        u = RankSet([0, 2]).union(RankSet([2, 4]))
        assert u.ranks() == (0, 2, 4)
        assert u.count == 3

    @given(
        st.sets(st.integers(0, 300), min_size=1, max_size=40),
        st.sets(st.integers(0, 300), min_size=1, max_size=40),
    )
    def test_union_equals_set_union(self, xs, ys):
        assert RankSet(xs).union(RankSet(ys)).ranks() == tuple(sorted(xs | ys))

    def test_equality_is_member_equality(self):
        assert RankSet([0, 1, 2, 3]) == RankSet(reversed([0, 1, 2, 3]))
        assert RankSet([0]) != RankSet([1])

    def test_hashable(self):
        assert len({RankSet([1, 2]), RankSet([2, 1]), RankSet([3])}) == 2

    def test_text_roundtrip(self):
        rs = RankSet([7, 3, 11])
        assert RankSet.from_text(rs.to_text()) == rs

    def test_from_text_rejects_empty(self):
        with pytest.raises(ValueError):
            RankSet.from_text("")

    def test_compactness_of_spmd_groups(self):
        # The key space property: "all P ranks" stays O(1) in size.
        small = RankSet.contiguous(0, 8).size_bytes()
        large = RankSet.contiguous(0, 1024).size_bytes()
        assert small == large
