"""Seeded fuzz: the sharded conservative-PDES engine is bit-identical to
the single-process engine.

Every test runs the same program under ``shards=1`` (the oracle) and
``shards>1`` and asserts *exact* equality (``==`` on floats, no
tolerances) of results, per-rank virtual clocks, per-rank busy times and
traffic totals — the same contract (and the same assertion shape) as the
macro-collective fast path in test_collective_fastpath.py.

Coverage:

* point-to-point: eager and rendezvous, exact tags and ``ANY_TAG`` with an
  exact source, across the P x shards matrix;
* collectives: the macro fast path (replayed in parallel on owner
  shards) and the message-level simulated path;
* cross-shard ``ANY_SOURCE`` via the quiescent drain (single-candidate
  receives stay sharded; genuine races fall back);
* shard-eligible fault plans (delays, duplicates, compute noise, slow
  links, shard-local crashes) including the merged injection counters
  and the coordinator-arbitrated orphan-release order;
* every fallback route — hazards (wildcard races, ``probe``, ``split``,
  cross-shard traffic into a crash-armed shard), statically ineligible
  runs (drop plans, ``max_steps``), and error reruns (failing ranks,
  deadlock) whose diagnostics must match the single-process engine
  verbatim.

Set ``REPRO_FUZZ_SHARDS=N`` to add a shard count to the fuzz matrix
(CI runs a dedicated ``REPRO_FUZZ_SHARDS=8`` leg).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.faults import LOST
from repro.faults.plan import (
    ComputeFault,
    CrashFault,
    FaultPlan,
    LinkFault,
    MessageFaults,
)
from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    SimConfig,
    TaskFailedError,
    run_spmd,
)

FUZZ_PS = (16, 64, 256)
#: Default fuzz matrix; REPRO_FUZZ_SHARDS=N widens it (the CI fuzz leg
#: runs N=8 so the dense-shard protocol gets a dedicated pass).
SHARD_COUNTS = tuple(sorted({1, 2, 4}
                            | {int(os.environ.get("REPRO_FUZZ_SHARDS", 1))}))


def _pair(prog, nprocs, shards, *, config=None, **kwargs):
    """Run ``prog`` single-process and sharded; return (single, sharded)."""
    base = config if config is not None else SimConfig()
    single = run_spmd(prog, nprocs, config=base.replace(shards=1), **kwargs)
    sharded = run_spmd(prog, nprocs, config=base.replace(shards=shards),
                       **kwargs)
    return single, sharded


def _assert_identical(single, sharded, *, results: bool = True):
    if results:
        assert sharded.results == single.results
    assert sharded.clocks == single.clocks
    assert sharded.busy_times == single.busy_times
    assert sharded.total_messages == single.total_messages
    assert sharded.total_bytes == single.total_bytes
    assert sharded.messages_matched == single.messages_matched
    assert sharded.collectives_fast == single.collectives_fast
    assert sharded.collectives_simulated == single.collectives_simulated
    assert sharded.failed_ranks == single.failed_ranks


def _assert_sharded(result, shards):
    """The run really went through the wave protocol (no fallback)."""
    if shards > 1:
        assert result.extras.get("shards") == shards
        assert "shard_fallback" not in result.extras
        assert result.extras.get("waves", 0) >= 1


async def _p2p_collective_mix(ctx):
    comm, rank, size = ctx.comm, ctx.rank, ctx.size
    right, left = (rank + 1) % size, (rank - 1) % size
    acc = 0.0
    for r in range(3):
        s = comm.isend(right, rank * 10 + r, tag=r)
        acc += await comm.recv(source=left, tag=r)
        await s.wait()
        acc += await comm.allreduce(rank + r * 0.25)
    await comm.barrier()
    return acc


class TestP2PShardMatrix:
    @pytest.mark.parametrize("nprocs", FUZZ_PS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_ring_with_collectives(self, nprocs, shards):
        single, sharded = _pair(_p2p_collective_mix, nprocs, shards)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, shards)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_any_tag_exact_source_is_shard_safe(self, shards):
        # ANY_TAG with a pinned source reduces to per-pair FIFO matching,
        # which is interleaving-invariant — no fallback.
        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            right, left = (rank + 1) % size, (rank - 1) % size
            sends = [comm.isend(right, rank * 100 + t, tag=t)
                     for t in (3, 1, 2)]
            got = [await comm.recv(source=left, tag=ANY_TAG)
                   for _ in range(3)]
            for s in sends:
                await s.wait()
            return got

        single, sharded = _pair(prog, 16, shards)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, shards)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_rendezvous_cross_shard(self, shards):
        # 80 KiB payloads exceed eager_threshold: the sender's completion
        # (and deferred busy charge) travels back across the shard barrier.
        big = 80 * 1024

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            right, left = (rank + 1) % size, (rank - 1) % size
            s = comm.isend(right, bytes(big), tag=0)
            got = await comm.recv(source=left, tag=0)
            await s.wait()
            await comm.barrier()
            return len(got)

        single, sharded = _pair(prog, 16, shards)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, shards)
        assert single.total_bytes > big * 15

    def test_seeded_random_program(self):
        rng = random.Random(0x5EED5)
        script = [rng.choice(["send", "allreduce", "barrier", "bcast",
                              "allgather", "scan"])
                  for _ in range(30)]

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            right, left = (rank + 1) % size, (rank - 1) % size
            acc = 0.0
            for i, kind in enumerate(script):
                if kind == "send":
                    s = comm.isend(right, rank + i, tag=i)
                    acc += await comm.recv(source=left, tag=i)
                    await s.wait()
                elif kind == "allreduce":
                    acc += await comm.allreduce(rank + i * 0.5)
                elif kind == "barrier":
                    await comm.barrier()
                elif kind == "bcast":
                    root = i % size
                    acc += await comm.bcast(i if rank == root else None,
                                            root=root)
                elif kind == "allgather":
                    acc += sum(await comm.allgather(rank))
                elif kind == "scan":
                    acc += await comm.scan(1)
            return acc

        for nprocs, shards in ((16, 2), (64, 4), (256, 8)):
            single, sharded = _pair(prog, nprocs, shards)
            _assert_identical(single, sharded)
            _assert_sharded(sharded, shards)


class TestCollectiveModes:
    @pytest.mark.parametrize("shards", (2, 4, 8))
    def test_simulated_collectives_cross_shard(self, shards):
        # The message-level reference path: collective traffic itself
        # crosses shards through the wave barrier, tag windows and all.
        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            a = await comm.allreduce(rank)
            g = await comm.gather(rank, root=0)
            await comm.barrier()
            return (a, len(g) if g else 0)

        single, sharded = _pair(
            prog, 16, shards, config=SimConfig(collectives="simulated")
        )
        _assert_identical(single, sharded)
        _assert_sharded(sharded, shards)
        # allreduce decomposes into reduce+bcast: 4 instances per rank.
        assert single.collectives_simulated == 4 * 16
        assert single.collectives_fast == 0

    def test_fast_collectives_replayed_on_owner_shards(self):
        # Fast-path gates never touch a mailbox: every instance resolves
        # through an owner-shard replay (round-robin by collective seq).
        async def prog(ctx):
            total = await ctx.comm.allreduce(ctx.rank)
            await ctx.comm.barrier()
            return total

        single, sharded = _pair(prog, 64, 4)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, 4)
        assert sharded.collectives_fast == 3 * 64
        assert sharded.messages_matched == 0


class TestWildcardDrain:
    """Cross-shard ``ANY_SOURCE``: held until global quiescence, drained
    when exactly one candidate sender exists, raced runs fall back."""

    @pytest.mark.parametrize("nprocs", FUZZ_PS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_single_candidate_ring_stays_sharded(self, nprocs, shards):
        # One sender per receiver per round: the drain is pinned by
        # per-pair FIFO, so the run must stay sharded AND bit-identical.
        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            acc = 0.0
            for r in range(3):
                s = comm.isend((rank + 1) % size, rank * 10 + r, tag=r)
                acc += await comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                await s.wait()
                acc += await comm.allreduce(rank + r * 0.25)
            await comm.barrier()
            return acc

        single, sharded = _pair(prog, nprocs, shards)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, shards)

    def test_seeded_wildcard_fuzz(self):
        # Random per-rank mix of exact and wildcard receives (always from
        # the single left neighbour, so every wildcard has one candidate)
        # plus interleaved collectives, across uneven shard splits.
        rng = random.Random(0xA57)
        script = [rng.choice(["wild", "exact", "allreduce", "barrier"])
                  for _ in range(24)]

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            right, left = (rank + 1) % size, (rank - 1) % size
            acc = 0.0
            for i, kind in enumerate(script):
                if kind == "wild":
                    s = comm.isend(right, rank + i, tag=i)
                    acc += await comm.recv(source=ANY_SOURCE, tag=i)
                    await s.wait()
                elif kind == "exact":
                    s = comm.isend(right, rank - i, tag=i)
                    acc += await comm.recv(source=left, tag=i)
                    await s.wait()
                elif kind == "allreduce":
                    acc += await comm.allreduce(rank + i * 0.5)
                else:
                    await comm.barrier()
            return acc

        for nprocs, shards in ((16, 2), (16, 3), (64, 4)):
            single, sharded = _pair(prog, nprocs, shards)
            _assert_identical(single, sharded)
            _assert_sharded(sharded, shards)

    def test_two_candidate_race_falls_back(self):
        # Two senders racing one wildcard: the oracle's pick depends on
        # global arrival order, so the sharded run must fall back — and
        # the rerun is the oracle, so results still match exactly.
        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            if rank == 0:
                a = await comm.recv(source=ANY_SOURCE, tag=0)
                b = await comm.recv(source=ANY_SOURCE, tag=0)
                return (a, b)
            if rank in (1, size - 1):
                await comm.isend(0, rank, tag=0).wait()
            return rank

        single, sharded = _pair(prog, 16, 4)
        _assert_identical(single, sharded)
        assert sharded.extras.get("shard_fallback") == "wildcard-race"

    def test_wildcard_under_fault_plan_falls_back(self):
        plan = FaultPlan(messages=MessageFaults(delay_prob=0.5, delay=1e-5))

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            s = comm.isend((rank + 1) % size, rank, tag=0)
            got = await comm.recv(source=ANY_SOURCE, tag=0)
            await s.wait()
            return got

        single, sharded = _pair(prog, 16, 4, faults=plan)
        _assert_identical(single, sharded)
        assert (sharded.extras.get("shard_fallback")
                == "hazard:wildcard-faults")


class TestShardEligibleFaults:
    def test_delay_compute_link_plan_bit_identical(self):
        # Every draw keys on (seed, kind, endpoints, per-sender ordinal),
        # so delays/dups/noise land identically wherever evaluated; the
        # per-shard injection counters must merge to the oracle's.
        plan = FaultPlan(
            seed=77,
            messages=MessageFaults(delay_prob=0.5, delay=1e-5,
                                   dup_prob=0.2),
            compute=(ComputeFault(rank=2, slowdown=1.5, jitter=0.1),),
            links=(LinkFault(src=0, dest=1, latency_factor=3.0),),
        )

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            right, left = (rank + 1) % size, (rank - 1) % size
            acc = 0.0
            for r in range(4):
                s = comm.isend(right, rank + r, tag=r)
                acc += await comm.recv(source=left, tag=r)
                await s.wait()
            ctx.compute(1e-5)
            await comm.barrier()
            return acc

        single, sharded = _pair(prog, 16, 4, faults=plan)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, 4)
        assert sharded.fault_summary == single.fault_summary
        assert sharded.fault_summary.get("delay", 0) > 0

    @pytest.mark.parametrize("shards", (2, 4))
    def test_shard_local_crash_plan_stays_sharded(self, shards):
        # The crashed rank and every rank that talks to it live in one
        # shard (pairs rank^1 inside aligned blocks), so the crash is an
        # island: no fallback, and the dead-source LOST hole plus the
        # merged failed/injected counters must match the oracle exactly.
        plan = FaultPlan(crashes=(CrashFault(rank=3, time=1e-5),))

        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            partner = rank ^ 1
            ctx.compute(2e-5)  # past the crash time at the next dispatch
            got = []
            for r in range(3):
                s = comm.isend(partner, rank + r, tag=r)
                v = await comm.recv(source=partner, tag=r)
                await s.wait()
                got.append("lost" if v is LOST else v)
            return got

        single, sharded = _pair(prog, 16, shards)
        single_f, sharded_f = _pair(prog, 16, shards, faults=plan)
        # Sanity: the plan actually changed the run.
        assert single_f.results != single.results
        _assert_identical(single_f, sharded_f)
        _assert_sharded(sharded_f, shards)
        assert sharded_f.failed_ranks == (3,)
        assert "lost" in sharded_f.results[2]
        assert sharded_f.fault_summary == single_f.fault_summary
        assert sharded_f.fault_summary.get("crash", 0) == 1

    @pytest.mark.parametrize("shards", (2, 4))
    def test_shard_local_release_order_matches_oracle(self, shards):
        # An armed-but-never-firing crash keeps the injector active, so
        # ranks orphaned by a silent peer are released by the op-timeout
        # backstop.  Sharded, that release is arbitrated by the
        # coordinator at global quiescence; the (post_time, rank) order —
        # rank 2 blocked at t=0 before rank 1 at t=1 — and the resulting
        # LOST holes must match the single-process engine exactly.
        plan = FaultPlan(crashes=(CrashFault(rank=3, time=1e9),))

        async def prog(ctx):
            if ctx.rank in (0, 3) or ctx.rank >= 4:
                return "done"
            if ctx.rank == 2:
                return await ctx.comm.recv(source=3, tag=7)
            ctx.compute(1.0)
            return await ctx.comm.recv(source=3, tag=7)

        single, sharded = _pair(prog, 16, shards, faults=plan)
        _assert_identical(single, sharded)
        _assert_sharded(sharded, shards)
        assert sharded.results[1] is LOST and sharded.results[2] is LOST
        assert sharded.fault_summary == single.fault_summary
        assert sharded.fault_summary.get("timeout", 0) == 2
        assert sharded.failed_ranks == ()

    def test_seeded_shard_local_crash_fuzz(self):
        # Several crash sites, several shard splits: as long as each
        # crash's traffic stays inside its block the run stays sharded
        # and every release lands bit-identically.
        for seed, crash_rank, shards in ((1, 5, 4), (2, 12, 4), (3, 9, 2)):
            plan = FaultPlan(
                seed=seed, crashes=(CrashFault(rank=crash_rank, time=1e-5),)
            )
            block = 16 // shards

            async def prog(ctx, block=block):
                comm, rank = ctx.comm, ctx.rank
                base = (rank // block) * block
                partner = base + (rank - base + 1) % block
                source = base + (rank - base - 1) % block
                ctx.compute(2e-5)
                acc = []
                for r in range(3):
                    s = comm.isend(partner, rank + r, tag=r)
                    got = await comm.recv(source=source, tag=r)
                    await s.wait()
                    acc.append("lost" if got is LOST else got)
                return acc

            single, sharded = _pair(prog, 16, shards, faults=plan)
            _assert_identical(single, sharded)
            _assert_sharded(sharded, shards)
            assert sharded.failed_ranks == (crash_rank,)


class TestFallbacks:
    def _fallback_reason(self, result):
        return result.extras.get("shard_fallback")

    def test_probe_and_split_fall_back(self):
        async def probing(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            s = comm.isend((rank + 1) % size, rank, tag=0)
            comm.probe(source=(rank - 1) % size, tag=0)
            got = await comm.recv(source=(rank - 1) % size, tag=0)
            await s.wait()
            return got

        async def splitting(ctx):
            sub = await ctx.comm.split(color=ctx.rank % 2)
            return await sub.allreduce(ctx.rank)

        for prog, reason in ((probing, "hazard:probe"),
                             (splitting, "hazard:split")):
            single, sharded = _pair(prog, 16, 2)
            _assert_identical(single, sharded)
            assert self._fallback_reason(sharded) == reason

    def test_cross_shard_crash_plan_falls_back(self):
        # Collectives under a crash plan go message-level, so their
        # world-spanning traffic touches the armed shard from outside —
        # the hazard fires and the oracle rerun supplies the exact
        # partial-failure semantics.
        plan = FaultPlan(crashes=(CrashFault(rank=3, time=1e-5),))

        async def prog(ctx):
            acc = 0.0
            for i in range(3):
                acc += await ctx.comm.allreduce(ctx.rank + i)
            return acc

        single, sharded = _pair(prog, 16, 4, faults=plan)
        _assert_identical(single, sharded)
        assert self._fallback_reason(sharded) == "hazard:fault-cross-shard"
        assert 3 in sharded.failed_ranks

    def test_drop_plan_is_statically_ineligible(self):
        plan = FaultPlan(seed=5, messages=MessageFaults(drop_prob=0.3))

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            s = comm.isend((rank + 1) % size, rank, tag=0)
            got = await comm.recv(source=(rank - 1) % size, tag=0)
            await s.wait()
            return got

        single, sharded = _pair(prog, 16, 2, faults=plan)
        _assert_identical(single, sharded)
        assert self._fallback_reason(sharded) == "faults"

    def test_max_steps_is_statically_ineligible(self):
        async def prog(ctx):
            return await ctx.comm.allreduce(ctx.rank)

        res = run_spmd(prog, 16,
                       config=SimConfig(shards=4, max_steps=10_000))
        assert self._fallback_reason(res) == "max-steps"

    def test_single_effective_shard_is_labelled(self):
        async def prog(ctx):
            return ctx.rank

        res = run_spmd(prog, 2, config=SimConfig(shards=8))
        # min(shards, nprocs) collapses... 2 still shards; nprocs=1 can't.
        res1 = run_spmd(prog, 1, config=SimConfig(shards=8))
        assert res1.extras.get("shard_fallback") == "nprocs"
        assert res.extras.get("shard_fallback") != "nprocs"

    def test_failing_rank_reraises_the_oracle_error(self):
        async def prog(ctx):
            if ctx.rank == 5:
                raise RuntimeError("boom on rank 5")
            await ctx.comm.barrier()
            return ctx.rank

        with pytest.raises(TaskFailedError) as single_exc:
            run_spmd(prog, 16, config=SimConfig(shards=1))
        with pytest.raises(TaskFailedError) as sharded_exc:
            run_spmd(prog, 16, config=SimConfig(shards=4))
        assert str(sharded_exc.value) == str(single_exc.value)

    def test_deadlock_reraises_the_oracle_diagnostic(self):
        async def prog(ctx):
            # Everyone receives from the left; nobody ever sends.
            return await ctx.comm.recv(
                source=(ctx.rank - 1) % ctx.size, tag=0
            )

        with pytest.raises(DeadlockError) as single_exc:
            run_spmd(prog, 8, config=SimConfig(shards=1))
        with pytest.raises(DeadlockError) as sharded_exc:
            run_spmd(prog, 8, config=SimConfig(shards=4))
        assert str(sharded_exc.value) == str(single_exc.value)

    def test_unpicklable_result_falls_back(self):
        async def prog(ctx):
            await ctx.comm.barrier()
            return lambda: ctx.rank  # cannot cross the pipe

        res = run_spmd(prog, 8, config=SimConfig(shards=2))
        reason = self._fallback_reason(res)
        assert reason is not None and reason.startswith("pickle:")
        assert all(callable(r) for r in res.results)


class TestExtras:
    def test_success_extras_record_shards_and_waves(self):
        single, sharded = _pair(_p2p_collective_mix, 16, 4)
        assert sharded.extras["shards"] == 4
        assert sharded.extras["waves"] >= 1
        assert "shards" not in single.extras

    def test_shard_profile_is_opt_in(self, monkeypatch):
        # Unset: no profile anywhere (zero-cost path).  Set: the wave
        # breakdown lands in extras with all four keys.
        monkeypatch.delenv("REPRO_SHARD_PROFILE", raising=False)
        plain = run_spmd(_p2p_collective_mix, 16,
                         config=SimConfig(shards=4))
        assert "shard_profile" not in plain.extras

        monkeypatch.setenv("REPRO_SHARD_PROFILE", "1")
        profiled = run_spmd(_p2p_collective_mix, 16,
                            config=SimConfig(shards=4))
        prof = profiled.extras["shard_profile"]
        assert set(prof) == {"waves", "barrier_wait_s", "forward_s",
                             "gate_replay_s"}
        assert prof["waves"] == profiled.extras["waves"]
        assert prof["barrier_wait_s"] >= 0.0
        assert prof["gate_replay_s"] > 0.0  # the mix replays collectives
        # Profiling must not perturb virtual time.
        assert profiled.clocks == plain.clocks


class TestAutoSharding:
    def test_auto_resolution_heuristic(self):
        from repro.simmpi import resolve_auto_shards

        assert resolve_auto_shards(16) == 1
        assert resolve_auto_shards(4096) == 1
        assert resolve_auto_shards(8192, cores=1) == 2
        assert resolve_auto_shards(16384, cores=4) == 4
        assert resolve_auto_shards(65536, cores=4) == 4
        assert resolve_auto_shards(65536, cores=16) == 8

    def test_auto_accepted_everywhere(self):
        from repro.simmpi.simconfig import parse_config

        assert SimConfig(shards="auto").shards == "auto"
        assert parse_config(["shards=auto"]).shards == "auto"
        with pytest.raises(ValueError):
            SimConfig(shards="many")

    def test_auto_digest_is_stable(self):
        # shards selects a bit-identical strategy, so "auto" must hash
        # into the same cache slot as any concrete count.
        assert (SimConfig(shards="auto").digest()
                == SimConfig(shards=1).digest()
                == SimConfig(shards=4).digest())

    def test_auto_runs_small_worlds_single_process(self):
        async def prog(ctx):
            a = await ctx.comm.allreduce(ctx.rank)
            await ctx.comm.barrier()
            return a

        auto = run_spmd(prog, 16, config=SimConfig(shards="auto"))
        single = run_spmd(prog, 16, config=SimConfig(shards=1))
        assert auto.results == single.results
        assert auto.clocks == single.clocks
        # P=16 resolves to one shard: the single-process engine, with no
        # sharding extras at all.
        assert "shards" not in auto.extras
