"""Seeded fuzz: the macro-collective fast path is bit-identical to the
message-level reference.

Every test here runs the same program twice — ``collectives="fast"`` and
``collectives="simulated"`` — and asserts *exact* equality (``==`` on
floats, no tolerances) of results, per-rank virtual clocks, per-rank busy
times and traffic totals.  That is the fast path's contract: it is a pure
wall-clock optimisation, invisible in virtual time.

Coverage:

* every leaf collective and both composites, every reduction op;
* non-power-of-two and prime P, split/dup sub-communicators;
* eager and rendezvous payload sizes;
* fault-triggered fallback (a crash on a participant routes the instance
  to the simulated path and matches today's degraded behaviour exactly);
* span-granularity observability parity and message-granularity fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.faults.plan import CrashFault, FaultPlan
from repro.obs.instrument import Recorder
from repro.simmpi import SimConfig, run_spmd
from repro.simmpi.collectives import BOR, LAND, LOR, MAX, MIN, PROD, SUM

FUZZ_PS = (3, 5, 16, 31, 64)
ALL_OPS = {
    "sum": SUM, "prod": PROD, "max": MAX, "min": MIN,
    "lor": LOR, "land": LAND, "bor": BOR,
}


def _pair(prog, nprocs, **kwargs):
    """Run ``prog`` under both collective modes and return (fast, sim)."""
    fast = run_spmd(prog, nprocs, config=SimConfig(collectives="fast"), **kwargs)
    sim = run_spmd(prog, nprocs, config=SimConfig(collectives="simulated"), **kwargs)
    return fast, sim


def _assert_identical(fast, sim, *, results: bool = True):
    if results:
        assert fast.results == sim.results
    assert fast.clocks == sim.clocks
    assert fast.busy_times == sim.busy_times
    assert fast.total_messages == sim.total_messages
    assert fast.total_bytes == sim.total_bytes
    assert fast.failed_ranks == sim.failed_ranks


class TestEveryCollective:
    @pytest.mark.parametrize("nprocs", FUZZ_PS)
    def test_all_leaves_and_composites(self, nprocs):
        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            out = []
            await comm.barrier()
            out.append(await comm.bcast(rank * 1.5 if rank == 0 else None,
                                        root=0))
            out.append(await comm.reduce(rank + 0.5, op=SUM,
                                         root=nprocs - 1))
            out.append(await comm.gather(rank * 2, root=nprocs // 2))
            out.append(await comm.scatter(
                [i * 3 for i in range(nprocs)]
                if rank == nprocs // 2 else None,
                root=nprocs // 2))
            out.append(await comm.allgather(rank))
            out.append(await comm.alltoall([rank * 100 + i
                                            for i in range(nprocs)]))
            out.append(await comm.scan(rank + 1, op=SUM))
            out.append(await comm.allreduce(float(rank), op=MAX))
            return out

        fast, sim = _pair(prog, nprocs)
        _assert_identical(fast, sim)
        assert fast.collectives_fast > 0
        assert fast.collectives_simulated == 0
        assert sim.collectives_fast == 0
        # The fast path must also collapse scheduler work:
        assert fast.engine_steps < sim.engine_steps

    @pytest.mark.parametrize("opname", sorted(ALL_OPS))
    def test_every_reduction_op(self, opname):
        op = ALL_OPS[opname]

        async def prog(ctx):
            base = (ctx.rank % 3) + 1  # small ints: safe for PROD/bitwise
            a = await ctx.comm.allreduce(base, op=op)
            b = await ctx.comm.reduce(base, op=op, root=2)
            c = await ctx.comm.scan(base, op=op)
            return (a, b, c)

        fast, sim = _pair(prog, 13)
        _assert_identical(fast, sim)

    def test_rendezvous_payloads(self):
        # Payloads past eager_threshold exercise the rendezvous arithmetic
        # (deferred sender busy charge) inside the replay.
        big = 80 * 1024

        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            v = await comm.bcast(bytes(big) if rank == 0 else None, root=0)
            g = await comm.gather(bytes(big), root=0)
            a = await comm.allgather(bytes(big // 8))
            return (len(v), len(g) if g else 0, len(a))

        fast, sim = _pair(prog, 9)
        _assert_identical(fast, sim)
        assert fast.total_bytes == sim.total_bytes > 0

    def test_seeded_random_program(self):
        rng = random.Random(0xC0FFEE)
        script = [rng.choice(["barrier", "allreduce", "bcast", "allgather",
                              "scan", "gather", "scatter", "alltoall"])
                  for _ in range(40)]

        async def prog(ctx):
            comm, rank, size = ctx.comm, ctx.rank, ctx.size
            acc = 0.0
            for i, kind in enumerate(script):
                root = i % size
                if kind == "barrier":
                    await comm.barrier()
                elif kind == "allreduce":
                    acc += await comm.allreduce(rank + i * 0.25)
                elif kind == "bcast":
                    acc += await comm.bcast(i if rank == root else None,
                                            root=root)
                elif kind == "allgather":
                    acc += sum(await comm.allgather(rank))
                elif kind == "scan":
                    acc += await comm.scan(1, op=SUM)
                elif kind == "gather":
                    got = await comm.gather(rank, root=root)
                    acc += sum(got) if got else 0
                elif kind == "scatter":
                    vals = [j + i for j in range(size)] \
                        if rank == root else None
                    acc += await comm.scatter(vals, root=root)
                elif kind == "alltoall":
                    acc += sum(await comm.alltoall(list(range(size))))
            return acc

        for nprocs in (5, 16, 31):
            fast, sim = _pair(prog, nprocs)
            _assert_identical(fast, sim)


class TestSubCommunicators:
    @pytest.mark.parametrize("nprocs", (5, 16, 31))
    def test_split_and_dup(self, nprocs):
        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            sub = await comm.split(color=rank % 3, key=-rank)
            a = await sub.allreduce(rank, op=SUM)
            b = await sub.allgather(rank)
            dup = await comm.dup()
            c = await dup.allreduce(rank, op=MIN)
            await comm.barrier()
            return (sub.rank, sub.size, a, b, c)

        fast, sim = _pair(prog, nprocs)
        _assert_identical(fast, sim)
        # split/dup are themselves built from leaf collectives, so the
        # fast path must have fired on the sub-communicators too.
        assert fast.collectives_fast > 0

    def test_interleaved_subcomm_and_world(self):
        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            sub = await comm.split(color=rank % 2, key=rank)
            out = []
            for i in range(4):
                out.append(await sub.allreduce(rank + i))
                out.append(await comm.allreduce(rank - i))
            return out

        fast, sim = _pair(prog, 11)
        _assert_identical(fast, sim)


class TestFallbacks:
    def test_crash_on_participant_falls_back_identically(self):
        # Rank 2 crashes mid-run: every collective the crash could touch
        # must take the simulated path, and the whole degraded run (LOST
        # releases, op-timeout waits, survivor results) must match the
        # always-simulated reference exactly.
        plan = FaultPlan(crashes=(CrashFault(rank=2, time=1e-5),))

        async def prog(ctx):
            acc = 0.0
            for i in range(3):
                acc += await ctx.comm.allreduce(ctx.rank + i)
                await ctx.comm.barrier()
            return acc

        fast, sim = _pair(prog, 8, faults=plan)
        _assert_identical(fast, sim)
        assert 2 in fast.failed_ranks
        # A crash armed on a participant is a standing fallback condition.
        assert fast.collectives_fast == 0
        assert fast.collectives_simulated > 0

    def test_clean_faultplan_without_crashes_keeps_fast_path(self):
        # An armed plan whose perturbations cannot touch collectives
        # (empty message faults, no crashes, no links) stays eligible.
        plan = FaultPlan(compute=())

        async def prog(ctx):
            return await ctx.comm.allreduce(ctx.rank)

        fast, sim = _pair(prog, 6, faults=plan)
        _assert_identical(fast, sim)
        assert fast.collectives_fast > 0

    def test_knob_forces_simulated(self):
        async def prog(ctx):
            await ctx.comm.barrier()
            return await ctx.comm.allreduce(ctx.rank)

        sim = run_spmd(prog, 7, config=SimConfig(collectives="simulated"))
        assert sim.collectives_fast == 0
        assert sim.collectives_simulated == 3 * 7  # barrier+reduce+bcast

    def test_invalid_knob_rejected(self):
        async def prog(ctx):
            return None

        with pytest.raises(ValueError, match="collectives"):
            run_spmd(prog, 2, config=SimConfig(collectives="warp"))


class TestObservabilityParity:
    def _coll_spans(self, rec):
        return sorted(
            (s.rank, s.name, s.start, s.end, tuple(sorted(s.args.items())))
            for s in rec.spans if s.cat == "coll"
        )

    def test_span_granularity_spans_and_metrics_identical(self):
        async def prog(ctx):
            await ctx.comm.barrier()
            v = await ctx.comm.allreduce(ctx.rank)
            g = await ctx.comm.gather(ctx.rank, root=0)
            return (v, len(g) if g else 0)

        rec_fast = Recorder(granularity="span")
        rec_sim = Recorder(granularity="span")
        fast = run_spmd(prog, 9, config=SimConfig(collectives="fast"), instrument=rec_fast)
        sim = run_spmd(prog, 9, config=SimConfig(collectives="simulated"), instrument=rec_sim)
        _assert_identical(fast, sim)
        assert fast.collectives_fast == 4 * 9
        # The synthesized coll spans must be indistinguishable from the
        # simulated path's observed ones.
        assert self._coll_spans(rec_fast) == self._coll_spans(rec_sim)
        # Per-label exact equality (the wildcard aggregate would sum the
        # same floats in a different dict order — a spurious 1-ulp diff).
        for name in ("coll/calls", "coll/time"):
            labels = rec_sim.metrics.labels(name)
            assert rec_fast.metrics.labels(name) == labels
            for _, rank, phase, op in labels:
                assert rec_fast.metrics.value(
                    name, rank=rank, phase=phase, op=op
                ) == rec_sim.metrics.value(name, rank=rank, phase=phase,
                                           op=op)
        # Coverage counters: every instance was a fast hit in one run and
        # absent in the other.
        assert rec_fast.metrics.value("coll/fast_hits") == 4 * 9
        assert rec_sim.metrics.value("coll/fast_hits") == 0

    def test_message_granularity_recorder_forces_fallback(self):
        async def prog(ctx):
            return await ctx.comm.allreduce(ctx.rank)

        rec = Recorder()  # granularity="message"
        res = run_spmd(prog, 6, instrument=rec)
        assert res.collectives_fast == 0
        assert res.collectives_simulated > 0
        rec2 = Recorder(granularity="span")
        res2 = run_spmd(prog, 6, instrument=rec2)
        assert res2.collectives_fast > 0
        # Either way the coll spans agree.
        assert self._coll_spans(rec) == self._coll_spans(rec2)
        # And the fallback reason is surfaced as a labelled metric.
        assert rec.metrics.value("coll/fallbacks") > 0


class TestStepCollapse:
    def test_one_step_per_rank_for_pure_collectives(self):
        async def prog(ctx):
            for _ in range(5):
                await ctx.comm.barrier()
            return await ctx.comm.allreduce(ctx.rank)

        res = run_spmd(prog, 64)
        # Each rank is dispatched once; every collective completes via
        # bulk gate resolution, never re-entering the scheduler loop.
        assert res.engine_steps == 64
        assert res.collectives_fast == 7 * 64
