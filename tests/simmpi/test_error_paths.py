"""Error-path hygiene: diagnostics say what went wrong, and abnormal
teardown leaves no half-dead coroutines behind."""

import gc
import warnings

import pytest

from repro.simmpi import (
    DeadlockError,
    TaskFailedError,
    run_spmd,
)


class TestDeadlockDiagnostics:
    def test_send_recv_tag_mismatch_reports_both_sides(self):
        # A rendezvous send (payload above the eager threshold; the default
        # network's, since ZERO_COST makes everything eager) blocks until
        # matched; a receiver waiting on the wrong tag never matches it.
        # The report must show each side's operation so the mismatch is
        # readable straight from the message.
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, b"x", size=1 << 20, tag=5)
            else:
                await ctx.comm.recv(source=0, tag=6)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(main, 2)
        msg = str(ei.value)
        assert "rank 0" in msg and "rank 1" in msg
        assert "send" in msg and "recv" in msg
        assert "tag=5" in msg and "tag=6" in msg

    def test_blocked_ranks_listed_on_exception(self):
        async def main(ctx):
            await ctx.comm.recv(source=(ctx.rank + 1) % ctx.size, tag=3)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(main, 3)
        assert len(ei.value.blocked) == 3


class TestTaskFailurePropagation:
    def test_original_exception_preserved_through_launcher(self):
        class CustomError(RuntimeError):
            pass

        async def main(ctx):
            if ctx.rank == 1:
                raise CustomError("specific detail")
            await ctx.comm.barrier()

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(main, 4)
        assert ei.value.rank == 1
        assert isinstance(ei.value.original, CustomError)
        assert ei.value.__cause__ is ei.value.original
        assert "specific detail" in str(ei.value)

    def test_failure_mid_collective_still_attributed(self):
        async def main(ctx):
            await ctx.comm.barrier()
            if ctx.rank == 2:
                raise ValueError("after barrier")
            await ctx.comm.barrier()

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(main, 4)
        assert ei.value.rank == 2


class TestCleanTeardown:
    """Abnormal exits close every parked coroutine: collecting garbage
    afterwards must not surface 'coroutine ... was never awaited'."""

    @staticmethod
    def _assert_no_unawaited_warnings(trigger, exc_type):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(exc_type):
                trigger()
            gc.collect()
        unawaited = [
            w for w in caught
            if "never awaited" in str(w.message)
        ]
        assert not unawaited, [str(w.message) for w in unawaited]

    def test_deadlock_closes_blocked_coroutines(self):
        async def main(ctx):
            await ctx.comm.recv(source=(ctx.rank + 1) % ctx.size)

        self._assert_no_unawaited_warnings(
            lambda: run_spmd(main, 3), DeadlockError
        )

    def test_task_failure_closes_sibling_coroutines(self):
        async def main(ctx):
            if ctx.rank == 0:
                raise RuntimeError("boom")
            await ctx.comm.recv(source=0)

        self._assert_no_unawaited_warnings(
            lambda: run_spmd(main, 4), TaskFailedError
        )
