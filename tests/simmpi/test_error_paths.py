"""Error-path hygiene: diagnostics say what went wrong, and abnormal
teardown leaves no half-dead coroutines behind."""

import gc
import warnings

import pytest

from repro.faults import LOST
from repro.faults.injector import injector_for
from repro.faults.plan import CrashFault, FaultPlan
from repro.simmpi import (
    DeadlockError,
    Engine,
    SimFuture,
    Task,
    TaskFailedError,
    TaskState,
    run_spmd,
)


class TestDeadlockDiagnostics:
    def test_send_recv_tag_mismatch_reports_both_sides(self):
        # A rendezvous send (payload above the eager threshold; the default
        # network's, since ZERO_COST makes everything eager) blocks until
        # matched; a receiver waiting on the wrong tag never matches it.
        # The report must show each side's operation so the mismatch is
        # readable straight from the message.
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, b"x", size=1 << 20, tag=5)
            else:
                await ctx.comm.recv(source=0, tag=6)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(main, 2)
        msg = str(ei.value)
        assert "rank 0" in msg and "rank 1" in msg
        assert "send" in msg and "recv" in msg
        assert "tag=5" in msg and "tag=6" in msg

    def test_blocked_ranks_listed_on_exception(self):
        async def main(ctx):
            await ctx.comm.recv(source=(ctx.rank + 1) % ctx.size, tag=3)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(main, 3)
        assert len(ei.value.blocked) == 3


class TestDeadlockAttribution:
    """Orphan attribution reads structured SimFuture metadata, not labels.

    A deadlock with an *active* injector is unreachable end-to-end (the
    op-timeout backstop always makes progress), so the annotation path is
    exercised directly on a hand-built engine — exactly the state
    ``Engine.run`` would pass it.
    """

    @staticmethod
    def _engine_with_failed(failed_ranks):
        inj = injector_for(
            FaultPlan(crashes=(CrashFault(rank=0, time=1e9),))
        )
        inj.failed.update(failed_ranks)
        return Engine(faults=inj)

    @staticmethod
    def _blocked(rank, fut):
        task = Task(rank, None)
        task.state = TaskState.BLOCKED
        task.blocked_on = fut
        return task

    def test_double_digit_ranks_do_not_collide(self):
        # failed = {1}; a receive from rank 12 must NOT be blamed on rank 1
        # (the old substring match over "src=1 " was one format drift away
        # from exactly this misattribution), while a receive from rank 1
        # and a send to rank 1 must be.
        engine = self._engine_with_failed({1})
        from_1 = self._blocked(
            10, SimFuture(kind="irecv", src=1, dest=10, tag=0, comm=1)
        )
        from_12 = self._blocked(
            11, SimFuture(kind="irecv", src=12, dest=11, tag=1, comm=1)
        )
        to_1 = self._blocked(
            12, SimFuture(kind="isend", src=12, dest=1, tag=1, comm=1)
        )
        lines = engine._deadlock_detail([from_1, from_12, to_1])
        assert "orphaned by crash of rank 1]" in lines[0]
        assert "orphaned" not in lines[1]
        assert "orphaned by crash of rank 1]" in lines[2]

    def test_wildcard_receive_is_unattributable(self):
        # ANY_SOURCE carries src=None: no peer to blame, even with crashes.
        engine = self._engine_with_failed({3})
        wild = self._blocked(
            14, SimFuture(kind="irecv", src=None, dest=14, tag=-1, comm=1)
        )
        (line,) = engine._deadlock_detail([wild])
        assert "orphaned" not in line
        assert "rank 14" in line

    def test_no_attribution_without_active_faults(self):
        engine = Engine()
        stuck = self._blocked(
            10, SimFuture(kind="irecv", src=1, dest=10, tag=0, comm=1)
        )
        (line,) = engine._deadlock_detail([stuck])
        assert "orphaned" not in line


class TestPurgedSenderSeesLost:
    """A rendezvous offer purged with its dead receiver resolves the
    surviving sender with LOST — distinguishable from the None a
    completed (fire-and-forget) send to an already-dead rank returns."""

    def test_purged_rendezvous_lost_vs_dead_dest_none(self):
        plan = FaultPlan(crashes=(CrashFault(rank=1, time=5e-3),))

        async def main(ctx):
            if ctx.rank == 0:
                # Rendezvous offer parked in rank 1's mailbox before the
                # crash: the purge sweep must resolve it with LOST.
                first = await ctx.comm.isend(1, b"x", tag=0,
                                             size=1 << 20).wait()
                # Post-crash send to a known-dead rank: completes locally,
                # payload into the void — None, i.e. "sent, undetectable".
                second = await ctx.comm.isend(1, b"y", tag=0,
                                              size=1 << 20).wait()
                return (first, second)
            if ctx.rank == 1:
                # Advance past the crash time, then block so the scheduler
                # sees clock >= 5e-3 at the next dispatch and crashes us
                # with rank 0's offer still queued.
                ctx.compute(6e-3)
                await ctx.comm.recv(source=2, tag=9)
                await ctx.comm.recv(source=0, tag=0)  # never reached
                return "survived"
            ctx.compute(1e-2)
            await ctx.comm.send(1, b"wake", tag=9)
            return "done"

        result = run_spmd(main, 3, faults=plan)
        assert result.failed_ranks == (1,)
        first, second = result.results[0]
        assert first is LOST
        assert second is None
        assert result.results[1] is None  # crashed rank has no result


class TestTaskFailurePropagation:
    def test_original_exception_preserved_through_launcher(self):
        class CustomError(RuntimeError):
            pass

        async def main(ctx):
            if ctx.rank == 1:
                raise CustomError("specific detail")
            await ctx.comm.barrier()

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(main, 4)
        assert ei.value.rank == 1
        assert isinstance(ei.value.original, CustomError)
        assert ei.value.__cause__ is ei.value.original
        assert "specific detail" in str(ei.value)

    def test_failure_mid_collective_still_attributed(self):
        async def main(ctx):
            await ctx.comm.barrier()
            if ctx.rank == 2:
                raise ValueError("after barrier")
            await ctx.comm.barrier()

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(main, 4)
        assert ei.value.rank == 2


class TestCleanTeardown:
    """Abnormal exits close every parked coroutine: collecting garbage
    afterwards must not surface 'coroutine ... was never awaited'."""

    @staticmethod
    def _assert_no_unawaited_warnings(trigger, exc_type):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(exc_type):
                trigger()
            gc.collect()
        unawaited = [
            w for w in caught
            if "never awaited" in str(w.message)
        ]
        assert not unawaited, [str(w.message) for w in unawaited]

    def test_deadlock_closes_blocked_coroutines(self):
        async def main(ctx):
            await ctx.comm.recv(source=(ctx.rank + 1) % ctx.size)

        self._assert_no_unawaited_warnings(
            lambda: run_spmd(main, 3), DeadlockError
        )

    def test_task_failure_closes_sibling_coroutines(self):
        async def main(ctx):
            if ctx.rank == 0:
                raise RuntimeError("boom")
            await ctx.comm.recv(source=0)

        self._assert_no_unawaited_warnings(
            lambda: run_spmd(main, 4), TaskFailedError
        )
