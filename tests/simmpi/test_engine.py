"""Engine scheduling, virtual clocks, and failure propagation."""

import pytest

from repro.simmpi import (
    SimConfig,
    EngineLimitError,
    DeadlockError,
    Engine,
    SimFuture,
    TaskFailedError,
    TaskState,
    ZERO_COST,
    run_spmd,
)


def test_single_task_runs_to_completion():
    engine = Engine()

    async def main():
        return 42

    task = engine.spawn(0, main())
    engine.run()
    assert task.state is TaskState.DONE
    assert task.result == 42
    assert engine.results() == [42]


def test_tasks_interleave_through_futures():
    engine = Engine()
    fut = SimFuture(label="handoff")
    order = []

    async def waiter():
        order.append("waiter-start")
        value = await fut
        order.append(f"waiter-got-{value}")
        return value

    async def resolver():
        order.append("resolver")
        fut.resolve("ping", time=3.5)
        return None

    t_wait = engine.spawn(0, waiter())
    engine.spawn(1, resolver())
    engine.run()
    assert order == ["waiter-start", "resolver", "waiter-got-ping"]
    assert t_wait.result == "ping"


def test_future_time_advances_clock_via_request_semantics():
    async def main(ctx):
        ctx.compute(1.0)
        return ctx.clock

    res = run_spmd(main, 1, config=SimConfig(network=ZERO_COST))
    assert res.clocks == [1.0]


def test_compute_rejects_negative():
    async def main(ctx):
        ctx.compute(-1.0)

    with pytest.raises(TaskFailedError) as ei:
        run_spmd(main, 1)
    assert isinstance(ei.value.original, ValueError)


def test_task_exception_wrapped_with_rank():
    async def main(ctx):
        if ctx.rank == 2:
            raise RuntimeError("boom")
        await ctx.comm.barrier()

    with pytest.raises(TaskFailedError) as ei:
        run_spmd(main, 4)
    assert ei.value.rank == 2
    assert "boom" in str(ei.value)


def test_deadlock_detected_and_reported():
    async def main(ctx):
        # Everyone receives, nobody sends.
        await ctx.comm.recv(source=(ctx.rank + 1) % ctx.size, tag=7)

    with pytest.raises(DeadlockError) as ei:
        run_spmd(main, 3)
    msg = str(ei.value)
    assert "rank 0" in msg and "rank 2" in msg
    assert "tag=7" in msg


def test_max_steps_guard():
    async def pingpong(ctx):
        peer = 1 - ctx.rank
        for i in range(1000):
            if ctx.rank == 0:
                await ctx.comm.send(peer, i)
                await ctx.comm.recv(peer)
            else:
                await ctx.comm.recv(peer)
                await ctx.comm.send(peer, i)

    # The budget tripping is a property of the run, not of whichever rank
    # happened to be scheduled: it must NOT be wrapped in TaskFailedError
    # (which would blame an innocent rank).
    with pytest.raises(EngineLimitError) as ei:
        run_spmd(pingpong, 2, config=SimConfig(max_steps=50))
    assert "max_steps=50" in str(ei.value)
    assert ei.value.limit == 50
    assert not isinstance(ei.value, TaskFailedError)
    assert not hasattr(ei.value, "rank")


def test_results_and_clocks_sorted_by_rank():
    async def main(ctx):
        ctx.compute(float(ctx.rank))
        return ctx.rank * 10

    res = run_spmd(main, 5, config=SimConfig(network=ZERO_COST))
    assert res.results == [0, 10, 20, 30, 40]
    assert res.clocks == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert res.max_time == 4.0
    assert res.total_time == 10.0


def test_future_double_resolution_rejected():
    fut = SimFuture()
    fut.resolve(1)
    with pytest.raises(RuntimeError):
        fut.resolve(2)


def test_engine_rejects_non_future_yield():
    engine = Engine()

    class FakeAwaitable:
        def __await__(self):
            yield "not-a-future"

    async def main():
        await FakeAwaitable()

    engine.spawn(0, main())
    with pytest.raises(TaskFailedError):
        engine.run()
