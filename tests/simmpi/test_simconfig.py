"""SimConfig: validation, cache-digest stability, and the deprecation
shims that keep the pre-SimConfig keyword arguments working for one
release.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.harness.engine import make_cell
from repro.simmpi import (
    DEFAULT_CONFIG,
    QDR_CLUSTER,
    SLOW_CLUSTER,
    ZERO_COST,
    SimConfig,
    resolve_config,
    run_spmd,
)
from repro.simmpi.simconfig import NETWORK_PRESETS, parse_config


async def _prog(ctx):
    return await ctx.comm.allreduce(ctx.rank)


class TestValidation:
    def test_defaults(self):
        cfg = SimConfig()
        assert cfg.network is QDR_CLUSTER
        assert cfg.matching == "indexed"
        assert cfg.collectives == "fast"
        assert cfg.shards == 1
        assert cfg.max_steps is None
        assert cfg == DEFAULT_CONFIG

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("network", "qdr", "NetworkModel"),
            ("matching", "hash", "matching"),
            ("collectives", "warp", "collectives"),
            ("shards", 0, "shards"),
            ("shards", 2.0, "shards"),
            ("shards", True, "shards"),
            ("max_steps", 0, "max_steps"),
            ("max_steps", -5, "max_steps"),
        ],
    )
    def test_rejects_bad_fields(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            SimConfig(**{field: value})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimConfig().shards = 4  # type: ignore[misc]

    def test_replace_revalidates(self):
        cfg = SimConfig()
        assert cfg.replace(shards=4).shards == 4
        with pytest.raises(ValueError, match="shards"):
            cfg.replace(shards=-1)

    def test_invalid_knob_rejected_at_run_spmd(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="collectives"):
                run_spmd(_prog, 2, collectives="warp")


class TestDigestStability:
    def test_equivalent_spellings_share_a_digest(self):
        # matching/collectives/shards select bit-identical execution
        # strategies; the cache must serve one result for all of them.
        base = SimConfig()
        for variant in (
            SimConfig(matching="linear"),
            SimConfig(collectives="simulated"),
            SimConfig(shards=8),
            SimConfig(matching="linear", collectives="simulated", shards=4),
        ):
            assert variant.digest() == base.digest()
            assert variant.cache_key() == base.cache_key()

    def test_outcome_fields_change_the_digest(self):
        base = SimConfig()
        assert SimConfig(network=SLOW_CLUSTER).digest() != base.digest()
        assert SimConfig(network=ZERO_COST).digest() != base.digest()
        assert SimConfig(max_steps=100).digest() != base.digest()

    def test_cell_digest_routes_through_simconfig(self):
        mode = repro.Mode.CHAMELEON
        a = make_cell("bt", 8, mode, sim=SimConfig(network=SLOW_CLUSTER))
        b = make_cell("bt", 8, mode, network=SLOW_CLUSTER)
        c = make_cell("bt", 8, mode,
                      sim=SimConfig(network=SLOW_CLUSTER, shards=4))
        d = make_cell("bt", 8, mode)
        assert a.digest() == b.digest() == c.digest()
        assert d.digest() != a.digest()


class TestDeprecationShims:
    def test_resolve_config_warns_per_legacy_kwarg(self):
        with pytest.warns(DeprecationWarning) as record:
            cfg = resolve_config(None, network=ZERO_COST, shards=2)
        assert sorted(str(w.message).split("=")[0] for w in record) == \
            ["the network", "the shards"]
        assert cfg.network is ZERO_COST
        assert cfg.shards == 2

    def test_resolve_config_quiet_without_legacy_kwargs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_config(None) is DEFAULT_CONFIG
            custom = SimConfig(shards=2)
            assert resolve_config(custom) is custom

    def test_legacy_kwargs_override_config(self):
        with pytest.warns(DeprecationWarning):
            cfg = resolve_config(SimConfig(collectives="fast"),
                                 collectives="simulated")
        assert cfg.collectives == "simulated"

    def test_run_spmd_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match="network="):
            legacy = run_spmd(_prog, 4, network=ZERO_COST)
        modern = run_spmd(_prog, 4, config=SimConfig(network=ZERO_COST))
        assert legacy.results == modern.results
        assert legacy.clocks == modern.clocks

    def test_run_spmd_config_path_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spmd(_prog, 4, config=SimConfig(network=ZERO_COST))

    def test_api_run_network_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="network="):
            repro.run("bt", 8, "chameleon", network=ZERO_COST)

    def test_api_run_sim_path_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run("bt", 8, "chameleon",
                      sim=SimConfig(network=ZERO_COST))


class TestParseConfig:
    def test_all_keys(self):
        cfg = parse_config([
            "network=slow", "matching=linear", "collectives=simulated",
            "shards=4", "max_steps=500",
        ])
        assert cfg.network is SLOW_CLUSTER
        assert cfg.matching == "linear"
        assert cfg.collectives == "simulated"
        assert cfg.shards == 4
        assert cfg.max_steps == 500

    def test_empty_is_default(self):
        assert parse_config([]) == DEFAULT_CONFIG

    def test_max_steps_none(self):
        assert parse_config(["max_steps=none"]).max_steps is None

    def test_network_presets_cover_all_models(self):
        assert set(NETWORK_PRESETS) == {"qdr", "slow", "zero"}
        assert NETWORK_PRESETS["qdr"] is QDR_CLUSTER

    @pytest.mark.parametrize(
        ("pair", "match"),
        [
            ("shards", "KEY=VAL"),
            ("=4", "KEY=VAL"),
            ("shards=", "KEY=VAL"),
            ("network=fddi", "unknown network preset"),
            ("shards=four", "expects an integer"),
            ("warp=9", "unknown --config key"),
        ],
    )
    def test_rejects_malformed_pairs(self, pair, match):
        with pytest.raises(ValueError, match=match):
            parse_config([pair])

    def test_field_validation_still_applies(self):
        with pytest.raises(ValueError, match="shards"):
            parse_config(["shards=0"])
