"""SimConfig: validation, cache-digest stability, and the retirement
errors that replaced the pre-SimConfig keyword arguments (one release as
``DeprecationWarning`` shims, now ``TypeError``).
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.harness.engine import make_cell
from repro.simmpi import (
    DEFAULT_CONFIG,
    QDR_CLUSTER,
    SLOW_CLUSTER,
    ZERO_COST,
    SimConfig,
    resolve_config,
    run_spmd,
)
from repro.simmpi.simconfig import NETWORK_PRESETS, parse_config


async def _prog(ctx):
    return await ctx.comm.allreduce(ctx.rank)


class TestValidation:
    def test_defaults(self):
        cfg = SimConfig()
        assert cfg.network is QDR_CLUSTER
        assert cfg.matching == "indexed"
        assert cfg.collectives == "fast"
        assert cfg.p2p == "fast"
        assert cfg.shards == 1
        assert cfg.max_steps is None
        assert cfg == DEFAULT_CONFIG

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("network", "qdr", "NetworkModel"),
            ("matching", "hash", "matching"),
            ("collectives", "warp", "collectives"),
            ("p2p", "warp", "p2p"),
            ("shards", 0, "shards"),
            ("shards", 2.0, "shards"),
            ("shards", True, "shards"),
            ("max_steps", 0, "max_steps"),
            ("max_steps", -5, "max_steps"),
        ],
    )
    def test_rejects_bad_fields(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            SimConfig(**{field: value})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimConfig().shards = 4  # type: ignore[misc]

    def test_replace_revalidates(self):
        cfg = SimConfig()
        assert cfg.replace(shards=4).shards == 4
        with pytest.raises(ValueError, match="shards"):
            cfg.replace(shards=-1)

    def test_invalid_knob_rejected_at_simconfig(self):
        with pytest.raises(ValueError, match="collectives"):
            run_spmd(_prog, 2, config=SimConfig(collectives="warp"))


class TestDigestStability:
    def test_equivalent_spellings_share_a_digest(self):
        # matching/collectives/p2p/shards select bit-identical execution
        # strategies; the cache must serve one result for all of them.
        base = SimConfig()
        for variant in (
            SimConfig(matching="linear"),
            SimConfig(collectives="simulated"),
            SimConfig(p2p="simulated"),
            SimConfig(shards=8),
            SimConfig(matching="linear", collectives="simulated",
                      p2p="simulated", shards=4),
        ):
            assert variant.digest() == base.digest()
            assert variant.cache_key() == base.cache_key()

    def test_outcome_fields_change_the_digest(self):
        base = SimConfig()
        assert SimConfig(network=SLOW_CLUSTER).digest() != base.digest()
        assert SimConfig(network=ZERO_COST).digest() != base.digest()
        assert SimConfig(max_steps=100).digest() != base.digest()

    def test_cell_digest_routes_through_simconfig(self):
        mode = repro.Mode.CHAMELEON
        a = make_cell("bt", 8, mode, sim=SimConfig(network=SLOW_CLUSTER))
        b = make_cell("bt", 8, mode,
                      sim=SimConfig(network=SLOW_CLUSTER, shards=4))
        c = make_cell("bt", 8, mode)
        assert a.digest() == b.digest()
        assert c.digest() != a.digest()


class TestRetiredKwargs:
    """The pre-SimConfig per-knob keywords shipped one release as
    ``DeprecationWarning`` shims and now raise ``TypeError`` naming the
    replacement spelling."""

    def test_resolve_config_names_every_offending_kwarg(self):
        with pytest.raises(TypeError, match=r"network=, shards="):
            resolve_config(None, network=ZERO_COST, shards=2)

    def test_resolve_config_names_the_replacement(self):
        with pytest.raises(TypeError, match=r"SimConfig\(collectives=\.\.\.\)"):
            resolve_config(None, collectives="simulated")

    def test_resolve_config_quiet_without_legacy_kwargs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_config(None) is DEFAULT_CONFIG
            custom = SimConfig(shards=2)
            assert resolve_config(custom) is custom

    def test_none_valued_legacy_kwargs_are_ignored(self):
        # stale call sites passing explicit None keep working: only a
        # *value* trips the retirement error
        assert resolve_config(None, network=None, collectives=None) \
            is DEFAULT_CONFIG

    def test_run_spmd_legacy_kwargs_raise(self):
        with pytest.raises(TypeError, match=r"network="):
            run_spmd(_prog, 4, network=ZERO_COST)
        with pytest.raises(TypeError, match=r"collectives="):
            run_spmd(_prog, 4, collectives="simulated")

    def test_run_spmd_config_path_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spmd(_prog, 4, config=SimConfig(network=ZERO_COST))

    def test_api_run_network_kwarg_raises(self):
        with pytest.raises(TypeError, match=r"SimConfig\(network=\.\.\.\)"):
            repro.run("bt", 8, "chameleon", network=ZERO_COST)

    def test_make_cell_network_kwarg_raises(self):
        with pytest.raises(TypeError, match=r"network="):
            make_cell("bt", 8, repro.Mode.CHAMELEON, network=ZERO_COST)

    def test_api_run_sim_path_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run("bt", 8, "chameleon",
                      sim=SimConfig(network=ZERO_COST))


class TestParseConfig:
    def test_all_keys(self):
        cfg = parse_config([
            "network=slow", "matching=linear", "collectives=simulated",
            "p2p=simulated", "shards=4", "max_steps=500",
        ])
        assert cfg.network is SLOW_CLUSTER
        assert cfg.matching == "linear"
        assert cfg.collectives == "simulated"
        assert cfg.p2p == "simulated"
        assert cfg.shards == 4
        assert cfg.max_steps == 500

    def test_empty_is_default(self):
        assert parse_config([]) == DEFAULT_CONFIG

    def test_max_steps_none(self):
        assert parse_config(["max_steps=none"]).max_steps is None

    def test_network_presets_cover_all_models(self):
        assert set(NETWORK_PRESETS) == {"qdr", "slow", "zero"}
        assert NETWORK_PRESETS["qdr"] is QDR_CLUSTER

    @pytest.mark.parametrize(
        ("pair", "match"),
        [
            ("shards", "KEY=VAL"),
            ("=4", "KEY=VAL"),
            ("shards=", "KEY=VAL"),
            ("network=fddi", "unknown network preset"),
            ("shards=four", "expects an integer"),
            ("warp=9", "unknown --config key"),
        ],
    )
    def test_rejects_malformed_pairs(self, pair, match):
        with pytest.raises(ValueError, match=match):
            parse_config([pair])

    def test_field_validation_still_applies(self):
        with pytest.raises(ValueError, match="shards"):
            parse_config(["shards=0"])
