"""Indexed-vs-linear mailbox equivalence on randomized traffic.

The indexed :class:`~repro.simmpi.comm.Mailbox` (per-``(src, tag)`` lanes +
wildcard overflow lane) must be *observationally identical* to the
pre-index :class:`~repro.simmpi.comm.LinearMailbox` FIFO scan: same match
order, same payload/status per receive, same virtual timestamps, same
counters.  These tests drive the same seeded traffic through both
implementations (``run_spmd(..., config=SimConfig(matching=...))``) and assert byte-identical
outcomes.

Traffic generation is deliberately adversarial for an index:

* eager and rendezvous messages interleaved (sizes straddle the 64 KiB
  threshold);
* per-destination receive schemes mixing exact ``(src, tag)``, full
  ``(ANY_SOURCE, ANY_TAG)``, per-source ``(src, ANY_TAG)`` and per-tag
  ``(ANY_SOURCE, tag)`` wildcards, in shuffled post order;
* seeded compute jitter so post times differ across ranks.

Each destination uses a *single* scheme and the receive multiset mirrors
the incoming message multiset, so the run is deadlock-free by construction
(wildcard stealing across schemes cannot strand a message).
"""

from __future__ import annotations

import random

import pytest

from repro.simmpi import SimConfig, ANY_SOURCE, ANY_TAG, run_spmd

EAGER_SIZES = (64, 4096, 1 << 15)
RENDEZVOUS_SIZES = (1 << 17, 1 << 18)


def make_traffic(seed: int, nprocs: int, msgs_per_rank: int):
    """Deterministic traffic + receive plan, shared by both runs."""
    rng = random.Random(seed)
    sends: dict[int, list[tuple[int, int, int, float]]] = {
        r: [] for r in range(nprocs)
    }
    incoming: dict[int, list[tuple[int, int]]] = {r: [] for r in range(nprocs)}
    for src in range(nprocs):
        for _ in range(msgs_per_rank):
            dest = rng.randrange(nprocs)
            tag = rng.randrange(4)
            size = rng.choice(
                EAGER_SIZES if rng.random() < 0.7 else RENDEZVOUS_SIZES
            )
            jitter = rng.random() * 1e-5
            sends[src].append((dest, tag, size, jitter))
            incoming[dest].append((src, tag))
    recv_plan: dict[int, list[tuple[int, int]]] = {}
    for dest in range(nprocs):
        msgs = incoming[dest]
        scheme = rng.choice(["exact", "any_any", "src_anytag", "anysrc_tag"])
        if scheme == "exact":
            recvs = [(src, tag) for src, tag in msgs]
        elif scheme == "any_any":
            recvs = [(ANY_SOURCE, ANY_TAG)] * len(msgs)
        elif scheme == "src_anytag":
            recvs = [(src, ANY_TAG) for src, _tag in msgs]
        else:
            recvs = [(ANY_SOURCE, tag) for _src, tag in msgs]
        rng.shuffle(recvs)
        recv_plan[dest] = recvs
    return sends, recv_plan


async def _traffic_prog(ctx, sends, recv_plan):
    comm = ctx.comm
    sreqs = []
    for dest, tag, size, jitter in sends[ctx.rank]:
        ctx.compute(jitter)
        sreqs.append(comm.isend(dest, (ctx.rank, tag), tag=tag, size=size))
    rreqs = [comm.irecv(source=s, tag=t) for s, t in recv_plan[ctx.rank]]
    # The observable transcript: per receive, in completion order — payload,
    # who actually matched (status), and the virtual time it completed at.
    log = []
    for req in rreqs:
        payload, status = await req.wait_with_status()
        log.append((payload, status["source"], status["tag"],
                    status["nbytes"], ctx.clock))
    for req in sreqs:
        await req.wait()
    return log


def _transcript(seed: int, nprocs: int, msgs_per_rank: int, matching: str):
    sends, recv_plan = make_traffic(seed, nprocs, msgs_per_rank)
    result = run_spmd(
        _traffic_prog, nprocs, sends, recv_plan,
        config=SimConfig(matching=matching),
    )
    return result


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
def test_indexed_matches_linear_p16(seed):
    linear = _transcript(seed, 16, 12, "linear")
    indexed = _transcript(seed, 16, 12, "indexed")
    assert indexed.results == linear.results  # match order + status + times
    assert indexed.clocks == linear.clocks
    assert indexed.busy_times == linear.busy_times
    assert indexed.total_messages == linear.total_messages
    assert indexed.total_bytes == linear.total_bytes
    assert indexed.messages_matched == linear.messages_matched


@pytest.mark.parametrize("seed", [3, 2024])
def test_indexed_matches_linear_p64(seed):
    """The ISSUE's P=64 bar: heavier fan-in, all four receive schemes."""
    linear = _transcript(seed, 64, 8, "linear")
    indexed = _transcript(seed, 64, 8, "indexed")
    assert indexed.results == linear.results
    assert indexed.clocks == linear.clocks
    assert indexed.busy_times == linear.busy_times
    assert indexed.messages_matched == linear.messages_matched


def test_traffic_actually_mixes_protocols_and_wildcards():
    """Guard the generator: the equivalence above is only meaningful if the
    traffic really exercises eager + rendezvous and every receive scheme."""
    schemes = set()
    protocols = set()
    for seed in (0, 1, 7, 42, 1337):
        sends, recv_plan = make_traffic(seed, 16, 12)
        for per_rank in sends.values():
            for _dest, _tag, size, _j in per_rank:
                protocols.add("eager" if size <= 64 * 1024 else "rendezvous")
        for recvs in recv_plan.values():
            for src, tag in recvs:
                if src == ANY_SOURCE and tag == ANY_TAG:
                    schemes.add("any_any")
                elif src == ANY_SOURCE:
                    schemes.add("anysrc_tag")
                elif tag == ANY_TAG:
                    schemes.add("src_anytag")
                else:
                    schemes.add("exact")
    assert protocols == {"eager", "rendezvous"}
    assert schemes == {"exact", "any_any", "src_anytag", "anysrc_tag"}


def test_collectives_identical_across_matching_impls():
    """Collective plumbing (high tags, exact matching) through both paths."""

    async def prog(ctx):
        total = await ctx.comm.allreduce(ctx.rank)
        gathered = await ctx.comm.gather(ctx.rank, root=0)
        await ctx.comm.barrier()
        return (total, gathered)

    linear = run_spmd(prog, 32, config=SimConfig(matching="linear"))
    indexed = run_spmd(prog, 32, config=SimConfig(matching="indexed"))
    assert indexed.results == linear.results
    assert indexed.clocks == linear.clocks
    assert indexed.busy_times == linear.busy_times
