"""Property-based collective semantics over random payloads and sizes."""

from hypothesis import given, settings, strategies as st

from repro.simmpi import SimConfig, MAX, MIN, SUM, ZERO_COST, run_spmd

sizes = st.sampled_from([1, 2, 3, 5, 8])
values = st.lists(st.integers(-1000, 1000), min_size=8, max_size=8)


class TestCollectiveSemantics:
    @given(sizes, values)
    @settings(max_examples=40, deadline=None)
    def test_allreduce_equals_python_sum(self, nprocs, vals):
        async def main(ctx):
            return await ctx.comm.allreduce(vals[ctx.rank], op=SUM)

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        assert res.results == [sum(vals[:nprocs])] * nprocs

    @given(sizes, values)
    @settings(max_examples=40, deadline=None)
    def test_reduce_min_max_agree_with_builtins(self, nprocs, vals):
        async def main(ctx):
            hi = await ctx.comm.allreduce(vals[ctx.rank], op=MAX)
            lo = await ctx.comm.allreduce(vals[ctx.rank], op=MIN)
            return (hi, lo)

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        expected = (max(vals[:nprocs]), min(vals[:nprocs]))
        assert res.results == [expected] * nprocs

    @given(sizes, values)
    @settings(max_examples=40, deadline=None)
    def test_gather_scatter_roundtrip(self, nprocs, vals):
        async def main(ctx):
            gathered = await ctx.comm.gather(vals[ctx.rank], root=0)
            mine = await ctx.comm.scatter(gathered, root=0)
            return mine

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        assert res.results == vals[:nprocs]

    @given(sizes, values)
    @settings(max_examples=40, deadline=None)
    def test_allgather_equals_gather_plus_bcast(self, nprocs, vals):
        async def main(ctx):
            ag = await ctx.comm.allgather(vals[ctx.rank])
            g = await ctx.comm.gather(vals[ctx.rank], root=0)
            gb = await ctx.comm.bcast(g, root=0)
            return (ag, gb)

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        for ag, gb in res.results:
            assert ag == gb == vals[:nprocs]

    @given(sizes, values)
    @settings(max_examples=40, deadline=None)
    def test_scan_prefix_property(self, nprocs, vals):
        async def main(ctx):
            return await ctx.comm.scan(vals[ctx.rank], op=SUM)

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        assert res.results == [sum(vals[: r + 1]) for r in range(nprocs)]

    @given(sizes)
    @settings(max_examples=20, deadline=None)
    def test_alltoall_is_transpose(self, nprocs):
        async def main(ctx):
            row = [(ctx.rank, j) for j in range(ctx.size)]
            return await ctx.comm.alltoall(row)

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        for j, out in enumerate(res.results):
            assert out == [(i, j) for i in range(nprocs)]

    @given(sizes, st.integers(0, 7), values)
    @settings(max_examples=40, deadline=None)
    def test_bcast_any_root_any_payload(self, nprocs, root, vals):
        root = root % nprocs

        async def main(ctx):
            payload = vals if ctx.rank == root else None
            return await ctx.comm.bcast(payload, root=root)

        res = run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))
        assert res.results == [vals] * nprocs


class TestDeterminism:
    @given(sizes, values)
    @settings(max_examples=20, deadline=None)
    def test_full_run_bitwise_repeatable(self, nprocs, vals):
        async def main(ctx):
            out = []
            out.append(await ctx.comm.allreduce(vals[ctx.rank], op=SUM))
            peer = (ctx.rank + 1) % ctx.size
            src = (ctx.rank - 1) % ctx.size
            out.append(await ctx.comm.sendrecv(peer, vals[ctx.rank], source=src))
            ctx.compute(abs(vals[ctx.rank]) * 1e-6)
            await ctx.comm.barrier()
            return (out, ctx.clock)

        a = run_spmd(main, nprocs)
        b = run_spmd(main, nprocs)
        assert a.results == b.results
        assert a.clocks == b.clocks
        assert a.busy_times == b.busy_times
        assert a.total_messages == b.total_messages
