"""Network model and payload-size estimation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simmpi import NetworkModel, doubles, ints, payload_nbytes


class TestNetworkModel:
    def test_defaults_are_cluster_like(self):
        net = NetworkModel()
        assert 0 < net.latency < 1e-4
        assert net.bandwidth > 1e8

    def test_transfer_time_scales_linearly(self):
        net = NetworkModel(bandwidth=1000.0, min_message_bytes=0)
        assert net.transfer_time(2000) == pytest.approx(2.0)
        assert net.transfer_time(4000) == pytest.approx(4.0)

    def test_min_message_floor(self):
        net = NetworkModel(bandwidth=8.0, min_message_bytes=8)
        assert net.transfer_time(0) == pytest.approx(1.0)
        assert net.transfer_time(1) == pytest.approx(1.0)

    def test_eager_threshold(self):
        net = NetworkModel(eager_threshold=100)
        assert net.eager(100)
        assert not net.eager(101)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkModel(eager_threshold=-1)

    def test_frozen(self):
        net = NetworkModel()
        with pytest.raises(Exception):
            net.latency = 5.0  # type: ignore[misc]


class TestPayloadSizes:
    def test_scalars(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(5) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("hé") == 3  # utf-8

    def test_numpy_exact(self):
        a = np.zeros((10, 10), dtype=np.float64)
        assert payload_nbytes(a) == 800

    def test_containers_monotone(self):
        small = payload_nbytes([1, 2])
        large = payload_nbytes([1, 2, 3, 4, 5])
        assert large > small
        d1 = payload_nbytes({"k": 1})
        d2 = payload_nbytes({"k": 1, "j": 2})
        assert d2 > d1

    def test_nbytes_hint_protocol(self):
        class Sized:
            def nbytes_hint(self):
                return 12345

        class SizedAttr:
            nbytes_hint = 999

        assert payload_nbytes(Sized()) == 12345
        assert payload_nbytes(SizedAttr()) == 999

    def test_opaque_object_envelope(self):
        class Opaque:
            pass

        assert payload_nbytes(Opaque()) == 64

    @given(st.lists(st.integers(), max_size=50))
    def test_list_size_grows_with_len(self, xs):
        assert payload_nbytes(xs) >= payload_nbytes(xs[: len(xs) // 2])

    def test_typed_helpers(self):
        assert doubles(10) == 80
        assert ints(3) == 24
        with pytest.raises(ValueError):
            doubles(-1)
        with pytest.raises(ValueError):
            ints(-2)
