"""Collective correctness across communicator sizes (incl. non-powers of 2)."""

import pytest

from repro.simmpi import MAX, MIN, SUM, TaskFailedError, ZERO_COST, run_spmd

SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16]


@pytest.mark.parametrize("size", SIZES)
def test_barrier_completes(size):
    async def main(ctx):
        await ctx.comm.barrier()
        return "ok"

    assert run_spmd(main, size).results == ["ok"] * size


def test_barrier_synchronizes_clocks():
    async def main(ctx):
        if ctx.rank == 0:
            ctx.compute(100.0)
        await ctx.comm.barrier()
        return ctx.clock

    res = run_spmd(main, 4)
    # Nobody exits the barrier before the slow rank reached it.
    assert all(t >= 100.0 for t in res.results)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_from_any_root(size, root):
    root_rank = size - 1 if root == "last" else 0

    async def main(ctx):
        value = {"data": 123} if ctx.rank == root_rank else None
        return await ctx.comm.bcast(value, root=root_rank)

    res = run_spmd(main, size)
    assert res.results == [{"data": 123}] * size


@pytest.mark.parametrize("size", SIZES)
def test_reduce_sum_on_root_none_elsewhere(size):
    async def main(ctx):
        return await ctx.comm.reduce(ctx.rank, op=SUM, root=0)

    res = run_spmd(main, size)
    assert res.results[0] == size * (size - 1) // 2
    assert all(v is None for v in res.results[1:])


@pytest.mark.parametrize("size", SIZES)
def test_reduce_nonzero_root(size):
    root = size // 2

    async def main(ctx):
        return await ctx.comm.reduce(ctx.rank + 1, op=SUM, root=root)

    res = run_spmd(main, size)
    assert res.results[root] == size * (size + 1) // 2


@pytest.mark.parametrize("size", SIZES)
def test_allreduce_max_and_min(size):
    async def main(ctx):
        hi = await ctx.comm.allreduce(ctx.rank, op=MAX)
        lo = await ctx.comm.allreduce(ctx.rank, op=MIN)
        return (hi, lo)

    res = run_spmd(main, size)
    assert res.results == [(size - 1, 0)] * size


@pytest.mark.parametrize("size", SIZES)
def test_gather_rank_ordered(size):
    async def main(ctx):
        return await ctx.comm.gather(ctx.rank * ctx.rank, root=0)

    res = run_spmd(main, size)
    assert res.results[0] == [r * r for r in range(size)]
    assert all(v is None for v in res.results[1:])


@pytest.mark.parametrize("size", SIZES)
def test_scatter_delivers_per_rank_values(size):
    async def main(ctx):
        values = [f"item-{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
        return await ctx.comm.scatter(values, root=0)

    res = run_spmd(main, size)
    assert res.results == [f"item-{r}" for r in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_scatter_nonzero_root(size):
    root = size - 1

    async def main(ctx):
        values = list(range(ctx.size)) if ctx.rank == root else None
        return await ctx.comm.scatter(values, root=root)

    assert run_spmd(main, size).results == list(range(size))


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    async def main(ctx):
        return await ctx.comm.allgather(chr(ord("a") + ctx.rank))

    expected = [chr(ord("a") + r) for r in range(size)]
    assert run_spmd(main, size).results == [expected] * size


@pytest.mark.parametrize("size", SIZES)
def test_alltoall_transpose(size):
    async def main(ctx):
        values = [(ctx.rank, dest) for dest in range(ctx.size)]
        return await ctx.comm.alltoall(values)

    res = run_spmd(main, size)
    for r, row in enumerate(res.results):
        assert row == [(src, r) for src in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_scan_inclusive_prefix(size):
    async def main(ctx):
        return await ctx.comm.scan(ctx.rank + 1, op=SUM)

    res = run_spmd(main, size)
    assert res.results == [(r + 1) * (r + 2) // 2 for r in range(size)]


def test_scatter_wrong_count_raises():
    async def main(ctx):
        values = [1, 2, 3] if ctx.rank == 0 else None
        await ctx.comm.scatter(values, root=0)

    with pytest.raises(TaskFailedError):
        run_spmd(main, 4)


def test_mixed_collectives_sequence_stay_aligned():
    async def main(ctx):
        total = await ctx.comm.allreduce(1, op=SUM)
        await ctx.comm.barrier()
        values = await ctx.comm.allgather(ctx.rank)
        top = await ctx.comm.bcast(max(values), root=0)
        return (total, top)

    res = run_spmd(main, 7)
    assert res.results == [(7, 6)] * 7


def test_collective_cost_grows_with_size():
    """Barrier virtual time should grow roughly like log2(P)."""

    async def main(ctx):
        await ctx.comm.barrier()
        return ctx.clock

    t4 = max(run_spmd(main, 4).results)
    t64 = max(run_spmd(main, 64).results)
    assert t64 > t4
    # Dissemination is log2: 3 rounds vs 6 rounds, so about 2x, never 16x.
    assert t64 < 6 * t4


def test_split_groups_by_color():
    async def main(ctx):
        color = ctx.rank % 2
        sub = await ctx.comm.split(color)
        total = await sub.allreduce(ctx.rank, op=SUM)
        return (color, sub.size, total)

    res = run_spmd(main, 8)
    evens = sum(r for r in range(8) if r % 2 == 0)
    odds = sum(r for r in range(8) if r % 2 == 1)
    for rank, (color, size, total) in enumerate(res.results):
        assert size == 4
        assert total == (evens if color == 0 else odds)


def test_split_negative_color_opts_out():
    async def main(ctx):
        sub = await ctx.comm.split(-1 if ctx.rank == 0 else 0)
        if ctx.rank == 0:
            assert sub is None
            return None
        return await sub.allreduce(1, op=SUM)

    res = run_spmd(main, 5)
    assert res.results == [None, 4, 4, 4, 4]


def test_split_key_controls_rank_order():
    async def main(ctx):
        # Reverse ordering within the new communicator.
        sub = await ctx.comm.split(0, key=-ctx.rank)
        return sub.rank

    res = run_spmd(main, 4)
    assert res.results == [3, 2, 1, 0]


def test_dup_is_independent_context():
    async def main(ctx):
        dup = await ctx.comm.dup()
        assert dup.context.id != ctx.comm.context.id
        # Messages on the dup do not match receives on the world comm.
        if ctx.rank == 0:
            await dup.send(1, "via-dup", tag=4)
        elif ctx.rank == 1:
            return await dup.recv(0, tag=4)
        return None

    assert run_spmd(main, 2).results[1] == "via-dup"
