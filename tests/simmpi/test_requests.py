"""Non-blocking request semantics and status plumbing."""

import pytest

from repro.simmpi import SimConfig, ANY_SOURCE, ANY_TAG, MatchingError, TaskFailedError, ZERO_COST, run_spmd


class TestRequestLifecycle:
    def test_isend_eager_completes_immediately(self):
        async def main(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend(1, "x", tag=1)
                done_at_post = req.done
                await req.wait()
                return done_at_post
            await ctx.comm.recv(0, tag=1)
            return None

        assert run_spmd(main, 2).results[0] is True

    def test_irecv_not_done_until_message(self):
        # handshake forces the sender to act only after the irecv is posted
        # (virtual compute does not yield, so ordering needs real messages)
        async def main(ctx):
            if ctx.rank == 1:
                req = ctx.comm.irecv(0, tag=1)
                before = req.done
                await ctx.comm.send(0, "ready", tag=99)
                value = await req.wait()
                return (before, value, req.done)
            await ctx.comm.recv(1, tag=99)
            await ctx.comm.send(1, "late", tag=1)
            return None

        before, value, after = run_spmd(main, 2).results[1]
        assert before is False
        assert value == "late"
        assert after is True

    def test_irecv_done_when_message_already_queued(self):
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, "early", tag=2)
                return None
            ctx.compute(1.0)
            req = ctx.comm.irecv(0, tag=2)
            assert req.done
            return await req.wait()

        assert run_spmd(main, 2).results[1] == "early"

    def test_wait_idempotent_value(self):
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, 42, tag=3)
                return None
            req = ctx.comm.irecv(0, tag=3)
            a = await req.wait()
            b = await req.wait()  # second wait returns the same payload
            return (a, b)

        assert run_spmd(main, 2).results[1] == (42, 42)

    def test_wait_with_status_on_irecv(self):
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, b"abc", tag=9)
                return None
            req = ctx.comm.irecv(ANY_SOURCE, ANY_TAG)
            payload, status = await req.wait_with_status()
            return (payload, status["source"], status["tag"], status["nbytes"])

        assert run_spmd(main, 2).results[1] == (b"abc", 0, 9, 3)

    def test_wait_with_status_rejected_on_send(self):
        async def main(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend(1, "x", tag=1)
                await req.wait_with_status()
            else:
                await ctx.comm.recv(0, tag=1)

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(main, 2)
        assert isinstance(ei.value.original, MatchingError)

    def test_many_outstanding_irecvs_fifo_per_source(self):
        async def main(ctx):
            if ctx.rank == 0:
                for i in range(6):
                    await ctx.comm.send(1, i, tag=4)
                return None
            reqs = [ctx.comm.irecv(0, tag=4) for _ in range(6)]
            return [await r.wait() for r in reqs]

        assert run_spmd(main, 2).results[1] == [0, 1, 2, 3, 4, 5]

    def test_interleaved_isend_irecv_pairs(self):
        async def main(ctx):
            peer = 1 - ctx.rank
            sends = [ctx.comm.isend(peer, (ctx.rank, i), tag=i) for i in range(4)]
            recvs = [ctx.comm.irecv(peer, tag=i) for i in range(4)]
            got = [await r.wait() for r in recvs]
            for s in sends:
                await s.wait()
            return got

        res = run_spmd(main, 2)
        assert res.results[0] == [(1, i) for i in range(4)]
        assert res.results[1] == [(0, i) for i in range(4)]

    def test_rendezvous_isend_completes_at_recv(self):
        from repro.simmpi import NetworkModel

        net = NetworkModel(latency=0.0, bandwidth=100.0, o_send=0.0,
                           o_recv=0.0, eager_threshold=8, min_message_bytes=0)

        async def main(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend(1, None, tag=1, size=1000)
                posted_done = req.done
                ctx.compute(0.5)
                await req.wait()
                return (posted_done, ctx.clock)
            ctx.compute(2.0)
            await ctx.comm.recv(0, tag=1)
            return ctx.clock

        res = run_spmd(main, 2, config=SimConfig(network=net))
        posted_done, sender_clock = res.results[0]
        assert posted_done is False  # rendezvous: waits for the receiver
        assert sender_clock == pytest.approx(12.0)  # start@2 + 10s stream

    def test_probe_with_wildcards(self):
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, "m", tag=5)
                return None
            ctx.compute(1.0)
            assert ctx.comm.probe(tag=5)["source"] == 0
            assert ctx.comm.probe(source=0)["tag"] == 5
            assert ctx.comm.probe(source=1) is None
            await ctx.comm.recv(0, tag=5)
            # consumed: probe now empty
            return ctx.comm.probe()

        assert run_spmd(main, 2).results[1] is None
