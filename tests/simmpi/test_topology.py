"""Topology helpers: radix trees, binomial trees, grids (property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.simmpi import (
    Grid2D,
    RadixTree,
    binomial_children,
    binomial_parent,
    hypercube_neighbors,
    square_grid,
)


class TestRadixTree:
    def test_binary_shape(self):
        t = RadixTree(7)
        assert t.root == 0
        assert t.children(0) == [1, 2]
        assert t.children(1) == [3, 4]
        assert t.children(2) == [5, 6]
        assert t.children(3) == []
        assert t.parent(0) is None
        assert t.parent(4) == 1
        assert t.depth(6) == 2
        assert t.height() == 2

    def test_arbitrary_member_list(self):
        leads = [5, 2, 9, 7]
        t = RadixTree(leads)
        assert t.root == 5
        assert t.children(5) == [2, 9]
        assert t.children(2) == [7]
        assert t.parent(7) == 2
        assert 9 in t and 3 not in t

    def test_levels_leaves_first(self):
        t = RadixTree(6)
        levels = list(t.levels())
        assert levels[-1] == [0]
        seen = [r for level in levels for r in level]
        assert sorted(seen) == list(range(6))
        # every child appears in an earlier (deeper) level than its parent
        order = {r: i for i, level in enumerate(levels) for r in level}
        for r in range(1, 6):
            assert order[r] < order[t.parent(r)]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RadixTree(0)
        with pytest.raises(ValueError):
            RadixTree([1, 1])
        with pytest.raises(ValueError):
            RadixTree(4, arity=1)

    @given(st.integers(1, 200), st.integers(2, 5))
    def test_parent_child_consistency(self, size, arity):
        t = RadixTree(size, arity=arity)
        for r in range(size):
            for c in t.children(r):
                assert t.parent(c) == r
        # Every non-root has exactly one parent; union of children = all-root.
        all_children = [c for r in range(size) for c in t.children(r)]
        assert sorted(all_children) == list(range(1, size))

    @given(st.integers(1, 1025))
    def test_height_logarithmic(self, size):
        t = RadixTree(size)
        h = t.height()
        assert (1 << h) <= size < (1 << (h + 2))


class TestBinomial:
    @given(st.integers(1, 130), st.integers(0, 129))
    def test_parent_child_inverse(self, size, root):
        root = root % size
        for rank in range(size):
            for child in binomial_children(rank, size, root):
                assert binomial_parent(child, size, root) == rank

    @given(st.integers(1, 130), st.integers(0, 129))
    def test_tree_spans_all_ranks(self, size, root):
        root = root % size
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in binomial_children(node, size, root):
                assert child not in seen
                seen.add(child)
                frontier.append(child)
        assert seen == set(range(size))

    def test_power_of_two_depth(self):
        # In a binomial tree over 2^k ranks the deepest leaf is k hops away.
        size = 64
        def depth(rank):
            d = 0
            while (p := binomial_parent(rank, size, 0)) is not None:
                rank = p
                d += 1
            return d
        assert max(depth(r) for r in range(size)) == 6


class TestHypercube:
    def test_neighbors_power_of_two(self):
        assert hypercube_neighbors(0, 8) == [1, 2, 4]
        assert hypercube_neighbors(5, 8) == [4, 7, 1]

    def test_neighbors_truncated(self):
        # size 6: rank 2's peer 2^2=4 -> 6 is out of range and dropped
        assert all(n < 6 for n in hypercube_neighbors(2, 6))

    @given(st.integers(1, 100))
    def test_symmetry(self, size):
        for r in range(size):
            for n in hypercube_neighbors(r, size):
                assert r in hypercube_neighbors(n, size)


class TestGrid:
    def test_coords_roundtrip(self):
        g = Grid2D(3, 4)
        for rank in range(g.size):
            row, col = g.coords(rank)
            assert g.rank(row, col) == rank

    def test_neighbors_and_edges(self):
        g = Grid2D(3, 3)
        assert g.north(4) == 1
        assert g.south(4) == 7
        assert g.west(4) == 3
        assert g.east(4) == 5
        assert g.north(1) is None
        assert g.west(3) is None
        assert g.east(5) is None
        assert g.south(7) is None

    def test_bad_coords_raise(self):
        g = Grid2D(2, 2)
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.rank(2, 0)
        with pytest.raises(ValueError):
            Grid2D(0, 3)

    @given(st.integers(1, 1024))
    def test_square_grid_exact_factorization(self, size):
        g = square_grid(size)
        assert g.size == size
        assert g.rows <= g.cols

    def test_square_grid_perfect_squares(self):
        for n in (4, 16, 64, 256, 1024):
            g = square_grid(n)
            assert g.rows == g.cols
