"""Busy-time accounting and tool-traffic isolation."""

import pytest

from repro.simmpi import (
    SimConfig,
    ANY_TAG,
    NetworkModel,
    ZERO_COST,
    run_spmd,
)
from repro.simmpi.comm import MAX_USER_TAG


class TestBusyAccounting:
    def test_compute_counts_as_busy(self):
        async def main(ctx):
            ctx.compute(2.0)
            return None

        res = run_spmd(main, 1, config=SimConfig(network=ZERO_COST))
        assert res.busy_times == [2.0]

    def test_waiting_is_not_busy(self):
        net = NetworkModel(latency=0.0, bandwidth=float("inf"), o_send=0.0,
                           o_recv=0.0, eager_threshold=1 << 40,
                           min_message_bytes=0)

        async def main(ctx):
            if ctx.rank == 0:
                ctx.compute(10.0)
                await ctx.comm.send(1, "x")
            else:
                await ctx.comm.recv(0)  # waits 10s, does no work
            return None

        res = run_spmd(main, 2, config=SimConfig(network=net))
        assert res.busy_times[0] == pytest.approx(10.0)
        assert res.busy_times[1] == pytest.approx(0.0)
        # but rank 1's clock advanced to the arrival
        assert res.clocks[1] == pytest.approx(10.0)

    def test_send_overheads_are_busy(self):
        net = NetworkModel(latency=1.0, bandwidth=100.0, o_send=0.5,
                           o_recv=0.25, eager_threshold=1 << 40,
                           min_message_bytes=0)

        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, None, size=100)  # o_send + 1s copy
            else:
                await ctx.comm.recv(0)
            return None

        res = run_spmd(main, 2, config=SimConfig(network=net))
        assert res.busy_times[0] == pytest.approx(1.5)
        assert res.busy_times[1] == pytest.approx(0.25)

    def test_rendezvous_transfer_busy_on_sender(self):
        net = NetworkModel(latency=0.0, bandwidth=100.0, o_send=0.0,
                           o_recv=0.0, eager_threshold=10,
                           min_message_bytes=0)

        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, None, size=500)  # 5s stream
            else:
                ctx.compute(3.0)
                await ctx.comm.recv(0)
            return None

        res = run_spmd(main, 2, config=SimConfig(network=net))
        assert res.busy_times[0] == pytest.approx(5.0)  # streaming
        assert res.busy_times[1] == pytest.approx(3.0)  # own compute only

    def test_busy_never_exceeds_clock(self):
        async def main(ctx):
            peer = (ctx.rank + 1) % ctx.size
            for i in range(5):
                ctx.compute(0.01 * ctx.rank)
                await ctx.comm.sendrecv(peer, None, source=(ctx.rank - 1) % ctx.size)
            await ctx.comm.barrier()
            return None

        res = run_spmd(main, 6)
        for busy, clock in zip(res.busy_times, res.clocks):
            assert busy <= clock + 1e-12


class TestWildcardIsolation:
    def test_any_tag_ignores_internal_traffic(self):
        """An application wildcard receive must not steal messages carrying
        reserved (tool/collective) tags."""

        async def main(ctx):
            if ctx.rank == 0:
                # internal-tagged message arrives FIRST
                await ctx.comm.send(1, "internal", tag=MAX_USER_TAG + 1)
                await ctx.comm.send(1, "user", tag=3)
            else:
                ctx.compute(1.0)  # both messages queued by now
                got = await ctx.comm.recv(source=0, tag=ANY_TAG)
                internal = await ctx.comm.recv(source=0, tag=MAX_USER_TAG + 1)
                return (got, internal)
            return None

        res = run_spmd(main, 2)
        assert res.results[1] == ("user", "internal")

    def test_explicit_internal_tag_still_matches(self):
        async def main(ctx):
            if ctx.rank == 0:
                await ctx.comm.send(1, b"trace", tag=MAX_USER_TAG + 7)
                return None
            return await ctx.comm.recv(0, tag=MAX_USER_TAG + 7)

        assert run_spmd(main, 2).results[1] == b"trace"

    def test_tracer_traffic_survives_app_wildcards(self):
        """End to end: a master-worker app using ANY wildcards is traced and
        finalize's tree reduction is not disturbed."""
        from repro.scalatrace import ScalaTraceTracer

        async def main(ctx):
            tracer = ScalaTraceTracer(ctx)
            for _ in range(3):
                if ctx.rank == 0:
                    for _w in range(1, ctx.size):
                        await tracer.recv()  # ANY_SOURCE, ANY_TAG
                else:
                    await tracer.send(0, None, size=32)
            return await tracer.finalize()

        res = run_spmd(main, 5, config=SimConfig(network=ZERO_COST))
        trace = res.results[0]
        assert trace is not None
        assert trace.expanded_count() > 0
