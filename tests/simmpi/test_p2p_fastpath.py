"""Seeded fuzz: the macro p2p fast path is bit-identical to the
message-level reference.

Mirror of ``test_collective_fastpath.py`` for declared
:class:`~repro.simmpi.NeighborPattern` exchanges.  Every bit-identity test
runs the same program under ``p2p="fast"`` and ``p2p="simulated"`` and
asserts *exact* equality (``==`` on floats, no tolerances) of results,
per-rank virtual clocks, per-rank busy times and traffic totals.  The
workload tests add a third leg: the original hand-written message-level
bodies (forced by a tracer that is not pattern-transparent) must agree
with both.

Coverage:

* POP halo (slot replay), Sweep3D wavefront (script replay: recv-before-
  send chains) and AMG smoothing (partial participation) over
  P ∈ {4, 16, 64, 256}, eager and rendezvous payloads;
* every documented fallback reason, each surfaced as a labelled
  ``p2p/fallbacks`` metric and each bit-identical to the always-simulated
  run;
* sharded-engine behaviour (never gates; hazard under instrumentation);
* span-granularity observability parity;
* pattern validation errors and gate key mismatches;
* the columnar rank-state store round-trips bit-exactly.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import CrashFault, FaultPlan
from repro.obs.instrument import Recorder
from repro.simmpi import (
    ANY_SOURCE,
    NeighborPattern,
    PatternMismatchError,
    RankStateColumns,
    SimConfig,
    run_spmd,
)
from repro.simmpi.errors import TaskFailedError
from repro.workloads.amg import AMG
from repro.workloads.base import NullTracer
from repro.workloads.pop import POP
from repro.workloads.sweep3d import Sweep3D

FUZZ_PS = (4, 16, 64, 256)

#: workload factories per payload regime; sizes chosen so every message is
#: eager (< 64 KiB) resp. rendezvous (> 64 KiB) at every fuzz P
_WORKLOADS = {
    "pop": {
        "eager": lambda: POP(grid_points=896, iterations=2),
        "rendezvous": lambda: POP(grid_points=1 << 20, iterations=2),
    },
    "sweep3d": {
        "eager": lambda: Sweep3D(nx=16, ny=16, nz=16, iterations=2),
        "rendezvous": lambda: Sweep3D(nx=64, ny=64, nz=512, iterations=2,
                                      weak_scaling=True),
    },
    "amg": {
        "eager": lambda: AMG(fine_points=1 << 12, levels=3, iterations=2),
        "rendezvous": lambda: AMG(fine_points=1 << 26, levels=2,
                                  iterations=2),
    },
}


class _OpaqueTracer(NullTracer):
    """Not pattern-transparent: forces the original message-level bodies."""

    pattern_transparent = False


def _workload_prog(factory, opaque: bool = False):
    async def prog(ctx):
        workload = factory()
        tracer = (_OpaqueTracer if opaque else NullTracer)(ctx)
        await workload.run(ctx, tracer)
        return ctx.rank

    return prog


def _pair(prog, nprocs, **kwargs):
    """Run ``prog`` under both p2p modes and return (fast, sim)."""
    fast = run_spmd(prog, nprocs, config=SimConfig(p2p="fast"), **kwargs)
    sim = run_spmd(prog, nprocs, config=SimConfig(p2p="simulated"), **kwargs)
    return fast, sim


def _assert_identical(fast, sim, *, results: bool = True):
    if results:
        assert fast.results == sim.results
    assert fast.clocks == sim.clocks
    assert fast.busy_times == sim.busy_times
    assert fast.total_messages == sim.total_messages
    assert fast.total_bytes == sim.total_bytes
    assert fast.failed_ranks == sim.failed_ranks


def _ring_pattern(size: int, nbytes: int = 8, rounds: int = 2,
                  name: str = "test-ring") -> NeighborPattern:
    """Slot-aligned periodic ring: vectorized slot-replay tier."""
    ops = []
    for rank in range(size):
        right = (rank + 1) % size
        left = (rank - 1) % size
        row = []
        for r in range(rounds):
            row += [("isend", right, r, nbytes), ("recv", left, r),
                    ("wait", r)]
        ops.append(row)
    return NeighborPattern(name, size, ops)


def _chain_pattern(size: int, nbytes: int = 8) -> NeighborPattern:
    """Open chain with recv-before-send dependencies: the slot compiler
    rejects it (a recv precedes its matching send slot), so the scalar
    script-replay tier runs."""
    ops = []
    for rank in range(size):
        row = []
        if rank > 0:
            row.append(("recv", rank - 1, 5))
        row.append(("compute", 1e-7 * (rank + 1)))
        if rank < size - 1:
            row.append(("send", rank + 1, 5, nbytes))
        ops.append(row)
    return NeighborPattern("test-chain", size, ops)


class TestWorkloadBitIdentity:
    """The tentpole contract: fast == simulated == original bodies."""

    @pytest.mark.parametrize("nprocs", FUZZ_PS)
    @pytest.mark.parametrize("regime", ("eager", "rendezvous"))
    @pytest.mark.parametrize("workload", sorted(_WORKLOADS))
    def test_fast_simulated_and_original_agree(self, workload, regime,
                                               nprocs):
        factory = _WORKLOADS[workload][regime]
        fast, sim = _pair(_workload_prog(factory), nprocs)
        _assert_identical(fast, sim)
        original = run_spmd(_workload_prog(factory, opaque=True), nprocs,
                            config=SimConfig(p2p="fast"))
        _assert_identical(fast, original)
        assert fast.p2p_fast > 0
        assert fast.p2p_simulated == 0
        assert sim.p2p_fast == 0
        assert sim.p2p_simulated > 0
        # an opaque tracer never consults the gate at all
        assert original.p2p_fast == 0
        assert original.p2p_simulated == 0
        # the fast path must also collapse scheduler work
        assert fast.engine_steps < sim.engine_steps


class TestReplayTiers:
    @pytest.mark.parametrize("nprocs", (3, 4, 16, 64))
    @pytest.mark.parametrize("nbytes", (8, 80 * 1024))
    def test_slot_replay_ring(self, nprocs, nbytes):
        pattern = _ring_pattern(nprocs, nbytes=nbytes,
                                name=f"ring-{nprocs}-{nbytes}")
        assert pattern.slot_plan() is not None

        async def prog(ctx):
            for _ in range(3):
                await ctx.comm.exchange(pattern)
            return ctx.rank

        fast, sim = _pair(prog, nprocs)
        _assert_identical(fast, sim)
        assert fast.p2p_fast == 3 * nprocs
        assert fast.total_messages == 3 * pattern.total_messages
        assert fast.total_bytes == 3 * pattern.total_bytes

    @pytest.mark.parametrize("nprocs", (2, 5, 16))
    @pytest.mark.parametrize("nbytes", (8, 80 * 1024))
    def test_script_replay_chain(self, nprocs, nbytes):
        pattern = _chain_pattern(nprocs, nbytes=nbytes)
        assert pattern.slot_plan() is None  # forces the script tier

        async def prog(ctx):
            await ctx.comm.exchange(pattern)
            return ctx.rank

        fast, sim = _pair(prog, nprocs)
        _assert_identical(fast, sim)
        assert fast.p2p_fast == nprocs

    def test_compute_callback_matches_inline_charge(self):
        # exchange(compute=...) must charge exactly like the fallback's
        # compute hook does
        pattern = _chain_pattern(4)

        async def prog(ctx):
            await ctx.comm.exchange(pattern, compute=ctx.compute)
            return ctx.rank

        fast, sim = _pair(prog, 4)
        _assert_identical(fast, sim)


class TestStepCollapse:
    def test_one_step_per_rank_for_pure_patterns(self):
        pattern = _ring_pattern(64, name="collapse-ring")

        async def prog(ctx):
            for _ in range(5):
                await ctx.comm.exchange(pattern)

        res = run_spmd(prog, 64)
        # each rank is dispatched once; every instance completes via bulk
        # gate resolution, never re-entering the scheduler loop
        assert res.engine_steps == 64
        assert res.p2p_fast == 5 * 64


def _reasons(rec: Recorder) -> set:
    return {
        op.rsplit(":", 1)[1]
        for (_, _rank, _phase, op) in rec.metrics.labels("p2p/fallbacks")
    }


class TestFallbackReasons:
    """Every documented eligibility-envelope exit, each bit-identical and
    each surfaced as a labelled ``p2p/fallbacks`` metric."""

    def _pattern_prog(self, pattern):
        async def prog(ctx):
            await ctx.comm.exchange(pattern)
            return ctx.rank

        return prog

    def test_disabled(self):
        pattern = _ring_pattern(4, name="fb-disabled")
        rec = Recorder(granularity="span")
        res = run_spmd(self._pattern_prog(pattern), 4,
                       config=SimConfig(p2p="simulated"), instrument=rec)
        assert res.p2p_fast == 0
        assert res.p2p_simulated == 4
        assert _reasons(rec) == {"disabled"}

    def test_linear_matching(self):
        pattern = _ring_pattern(4, name="fb-linear")
        rec = Recorder(granularity="span")
        res = run_spmd(self._pattern_prog(pattern), 4,
                       config=SimConfig(matching="linear"), instrument=rec)
        assert res.p2p_fast == 0
        assert _reasons(rec) == {"linear-matching"}
        # and the linear-matching run is still bit-identical
        fast = run_spmd(self._pattern_prog(pattern), 4)
        sim = run_spmd(self._pattern_prog(pattern), 4,
                       config=SimConfig(matching="linear"))
        _assert_identical(fast, sim)

    def test_message_tracing(self):
        pattern = _ring_pattern(4, name="fb-tracing")
        rec = Recorder()  # granularity="message"
        res = run_spmd(self._pattern_prog(pattern), 4, instrument=rec)
        assert res.p2p_fast == 0
        assert _reasons(rec) == {"message-tracing"}

    def test_faults(self):
        # an armed crash is a standing fallback condition even when it
        # never fires inside the run
        pattern = _ring_pattern(4, name="fb-faults")
        plan = FaultPlan(crashes=(CrashFault(rank=2, time=10.0),))
        rec = Recorder(granularity="span")
        res = run_spmd(self._pattern_prog(pattern), 4, faults=plan,
                       instrument=rec)
        assert res.p2p_fast == 0
        assert _reasons(rec) == {"faults"}
        fast, sim = _pair(self._pattern_prog(pattern), 4, faults=plan)
        _assert_identical(fast, sim)

    def test_crash_mid_run_falls_back_identically(self):
        pattern = _ring_pattern(6, name="fb-crash")

        async def prog(ctx):
            for _ in range(12):
                await ctx.comm.exchange(pattern)
            return ctx.rank

        plan = FaultPlan(crashes=(CrashFault(rank=2, time=1e-5),))
        fast, sim = _pair(prog, 6, faults=plan)
        _assert_identical(fast, sim)
        assert 2 in fast.failed_ranks
        assert fast.p2p_fast == 0

    def test_pending_wildcard(self):
        pattern = _ring_pattern(4, name="fb-wild")

        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            req = comm.irecv(source=ANY_SOURCE, tag=99) if rank == 0 else None
            await comm.exchange(pattern)
            if rank == 3:
                await comm.send(0, None, tag=99, size=8)
            if req is not None:
                await req.wait()
            return rank

        rec = Recorder(granularity="span")
        res = run_spmd(prog, 4, instrument=rec)
        assert res.p2p_fast == 0
        assert _reasons(rec) == {"pending-wildcard"}
        _assert_identical(*_pair(prog, 4))

    def test_pending_recv(self):
        pattern = _ring_pattern(4, name="fb-pending")

        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            req = comm.irecv(source=3, tag=99) if rank == 0 else None
            await comm.exchange(pattern)
            if rank == 3:
                await comm.send(0, None, tag=99, size=8)
            if req is not None:
                await req.wait()
            return rank

        rec = Recorder(granularity="span")
        res = run_spmd(prog, 4, instrument=rec)
        assert res.p2p_fast == 0
        assert _reasons(rec) == {"pending-recv"}
        _assert_identical(*_pair(prog, 4))

    def test_queued_traffic(self):
        pattern = _ring_pattern(4, name="fb-queued")

        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            req = comm.isend(1, None, tag=99, size=8) if rank == 0 else None
            await comm.exchange(pattern)
            if req is not None:
                await req.wait()
            if rank == 1:
                await comm.recv(0, tag=99)
            return rank

        rec = Recorder(granularity="span")
        res = run_spmd(prog, 4, instrument=rec)
        assert res.p2p_fast == 0
        assert _reasons(rec) == {"queued-traffic"}
        _assert_identical(*_pair(prog, 4))

    def test_mid_phase_traffic(self):
        # rank 0 consults a clean gate and parks; rank 1 then injects
        # traffic before its own consult, which must abort the gate and
        # resolve rank 0's parked entry with the rerun token
        pattern = _ring_pattern(4, name="fb-midphase")

        async def prog(ctx):
            comm, rank = ctx.comm, ctx.rank
            req = comm.isend(2, None, tag=99, size=8) if rank == 1 else None
            await comm.exchange(pattern)
            if req is not None:
                await req.wait()
            if rank == 2:
                await comm.recv(1, tag=99)
            return rank

        rec = Recorder(granularity="span")
        res = run_spmd(prog, 4, instrument=rec)
        assert res.p2p_fast == 0
        reasons = _reasons(rec)
        assert "mid-phase-traffic" in reasons
        _assert_identical(*_pair(prog, 4))

    def test_clean_faultplan_without_crashes_keeps_fast_path(self):
        pattern = _ring_pattern(4, name="fb-cleanplan")
        plan = FaultPlan(compute=())
        fast, sim = _pair(self._pattern_prog(pattern), 4, faults=plan)
        _assert_identical(fast, sim)
        assert fast.p2p_fast == 4


class TestSharded:
    def test_shard_workers_never_gate_but_stay_identical(self):
        pattern = _ring_pattern(8, name="shard-ring")

        async def prog(ctx):
            for _ in range(2):
                await ctx.comm.exchange(pattern)
            return ctx.rank

        single = run_spmd(prog, 8)
        sharded = run_spmd(prog, 8, config=SimConfig(shards=2))
        assert "shard_fallback" not in sharded.extras
        # virtual time is identical; only the strategy-dependent p2p
        # counters differ (workers always take the message-level path)
        assert sharded.clocks == single.clocks
        assert sharded.busy_times == single.busy_times
        assert sharded.total_messages == single.total_messages
        assert sharded.total_bytes == single.total_bytes
        assert single.p2p_fast == 2 * 8
        assert sharded.p2p_fast == 0
        assert sharded.p2p_simulated == 2 * 8

    def test_instrumented_sharded_run_reruns_on_the_oracle(self):
        pattern = _ring_pattern(8, name="shard-ins-ring")

        async def prog(ctx):
            await ctx.comm.exchange(pattern)
            return ctx.rank

        rec = Recorder(granularity="span")
        res = run_spmd(prog, 8, config=SimConfig(shards=2), instrument=rec)
        # obs parity requires the single-process oracle: the run is
        # flagged, rerun, and reports the hazard
        assert res.extras["shard_fallback"] == "hazard:p2p-patterns"
        assert res.p2p_fast == 8


class TestObservabilityParity:
    def _p2p_spans(self, rec):
        return sorted(
            (s.rank, s.name, s.start, s.end, tuple(sorted(s.args.items())))
            for s in rec.spans if s.cat == "p2p"
        )

    @pytest.mark.parametrize("nbytes", (8, 80 * 1024))
    def test_span_granularity_spans_and_metrics_identical(self, nbytes):
        pattern = _ring_pattern(6, nbytes=nbytes, name=f"obs-ring-{nbytes}")

        async def prog(ctx):
            await ctx.comm.exchange(pattern)
            return ctx.rank

        rec_fast = Recorder(granularity="span")
        rec_sim = Recorder(granularity="span")
        fast = run_spmd(prog, 6, config=SimConfig(p2p="fast"),
                        instrument=rec_fast)
        sim = run_spmd(prog, 6, config=SimConfig(p2p="simulated"),
                       instrument=rec_sim)
        _assert_identical(fast, sim)
        assert fast.p2p_fast == 6
        # the synthesized p2p spans must be indistinguishable from the
        # simulated path's observed ones
        assert self._p2p_spans(rec_fast) == self._p2p_spans(rec_sim)
        # per-label exact equality of every p2p metric
        for name in ("p2p/bytes_sent", "p2p/messages", "p2p/bytes_received",
                     "p2p/recv_latency"):
            labels = rec_sim.metrics.labels(name)
            assert rec_fast.metrics.labels(name) == labels
            for _, rank, phase, op in labels:
                assert rec_fast.metrics.value(
                    name, rank=rank, phase=phase, op=op
                ) == rec_sim.metrics.value(name, rank=rank, phase=phase,
                                           op=op)
        # coverage counters: every instance was a fast hit in one run and
        # absent in the other
        assert rec_fast.metrics.value("p2p/fast_hits") == 6
        assert rec_sim.metrics.value("p2p/fast_hits") == 0
        assert rec_sim.metrics.value("p2p/fallbacks") == 6


class TestPatternValidation:
    def test_rejects_out_of_range_peer(self):
        with pytest.raises(ValueError, match="out of range"):
            NeighborPattern("bad", 2,
                            [(("isend", 5, 0, 8),), (("recv", 0, 0),)])

    def test_rejects_bad_tag(self):
        with pytest.raises(ValueError, match="tag"):
            NeighborPattern("bad", 2,
                            [(("isend", 1, -3, 8),), (("recv", 0, -3),)])

    def test_rejects_unbalanced_channel(self):
        with pytest.raises(ValueError, match="more send"):
            NeighborPattern("bad", 2, [(("isend", 1, 0, 8), ("wait", 0)),
                                       ()])
        with pytest.raises(ValueError, match="more recv"):
            NeighborPattern("bad", 2, [(), (("recv", 0, 0),)])

    def test_rejects_wait_before_isend(self):
        with pytest.raises(ValueError, match="does not follow"):
            NeighborPattern("bad", 1, [(("wait", 0),)])

    def test_rejects_double_wait(self):
        with pytest.raises(ValueError, match="waited twice"):
            NeighborPattern(
                "bad", 2,
                [(("isend", 1, 0, 8), ("wait", 0), ("wait", 0)),
                 (("recv", 0, 0),)])

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            NeighborPattern("bad", 1, [(("frobnicate", 1),)])

    def test_rejects_wrong_rank_count(self):
        with pytest.raises(ValueError, match="one script per rank"):
            NeighborPattern("bad", 3, [(), ()])

    def test_rejects_negative_compute(self):
        with pytest.raises(ValueError, match="compute"):
            NeighborPattern("bad", 1, [(("compute", -1.0),)])

    def test_size_mismatch_with_communicator(self):
        pattern = _ring_pattern(3, name="mismatch-size")

        async def prog(ctx):
            await ctx.comm.exchange(pattern)

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(prog, 4)
        assert isinstance(ei.value.original, PatternMismatchError)

    def test_gate_key_mismatch_between_ranks(self):
        a = _ring_pattern(4, rounds=1, name="key-a")
        b = _ring_pattern(4, rounds=1, name="key-b")

        async def prog(ctx):
            await ctx.comm.exchange(a if ctx.rank == 0 else b)

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(prog, 4)
        assert isinstance(ei.value.original, PatternMismatchError)


class TestColumnarState:
    def test_dict_roundtrip_is_bit_exact(self):
        dicts = [
            {"clock": 0.1 + 0.2, "busy": 1e-9 * (i + 1), "msgs_sent": i,
             "bytes_sent": i * 8, "msgs_received": i * 2,
             "bytes_received": i * 16}
            for i in range(17)
        ]
        cols = RankStateColumns.from_dicts(dicts)
        out = cols.to_dicts()
        assert out == dicts
        # native scalars, not numpy types
        assert type(out[0]["clock"]) is float
        assert type(out[0]["msgs_sent"]) is int

    def test_write_back_copies_every_column(self):
        class _Stub:
            clock = busy = 0.0
            msgs_sent = bytes_sent = msgs_received = bytes_received = 0

        dicts = [
            {"clock": 1.5 * i, "busy": 0.25 * i, "msgs_sent": i,
             "bytes_sent": 8 * i, "msgs_received": 2 * i,
             "bytes_received": 16 * i}
            for i in range(5)
        ]
        cols = RankStateColumns.from_dicts(dicts)
        tasks = [_Stub() for _ in range(5)]
        cols.write_back(tasks)
        for i, t in enumerate(tasks):
            assert t.clock == dicts[i]["clock"]
            assert t.busy == dicts[i]["busy"]
            assert t.msgs_sent == dicts[i]["msgs_sent"]
            assert t.bytes_sent == dicts[i]["bytes_sent"]
            assert t.msgs_received == dicts[i]["msgs_received"]
            assert t.bytes_received == dicts[i]["bytes_received"]
