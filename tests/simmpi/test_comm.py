"""Point-to-point semantics: matching, wildcards, ordering, protocols."""

import pytest

from repro.simmpi import (
    SimConfig,
    ANY_SOURCE,
    ANY_TAG,
    MatchingError,
    NetworkModel,
    TaskFailedError,
    ZERO_COST,
    run_spmd,
    wait_all,
)


def test_basic_send_recv_payload():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, {"a": 7}, tag=11)
            return None
        return await ctx.comm.recv(source=0, tag=11)

    res = run_spmd(main, 2)
    assert res.results[1] == {"a": 7}


def test_send_before_recv_and_recv_before_send():
    async def eager_first(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, "x")
            return None
        ctx.compute(1.0)  # make sure the message is queued before recv
        return await ctx.comm.recv(0)

    async def recv_first(ctx):
        if ctx.rank == 1:
            return await ctx.comm.recv(0)
        ctx.compute(1.0)
        await ctx.comm.send(1, "y")
        return None

    assert run_spmd(eager_first, 2).results[1] == "x"
    assert run_spmd(recv_first, 2).results[1] == "y"


def test_any_source_and_any_tag():
    async def main(ctx):
        if ctx.rank == 0:
            values = []
            for _ in range(2):
                payload, status = await ctx.comm.recv_with_status(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
                values.append((status["source"], status["tag"], payload))
            return sorted(values)
        await ctx.comm.send(0, f"from-{ctx.rank}", tag=ctx.rank * 10)
        return None

    res = run_spmd(main, 3)
    assert res.results[0] == [(1, 10, "from-1"), (2, 20, "from-2")]


def test_messages_non_overtaking_same_pair():
    async def main(ctx):
        if ctx.rank == 0:
            for i in range(5):
                await ctx.comm.send(1, i, tag=3)
            return None
        got = [await ctx.comm.recv(0, tag=3) for _ in range(5)]
        return got

    assert run_spmd(main, 2).results[1] == [0, 1, 2, 3, 4]


def test_tag_selectivity_reorders_matching():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, "first", tag=1)
            await ctx.comm.send(1, "second", tag=2)
            return None
        second = await ctx.comm.recv(0, tag=2)
        first = await ctx.comm.recv(0, tag=1)
        return (first, second)

    assert run_spmd(main, 2).results[1] == ("first", "second")


def test_sendrecv_exchange_no_deadlock():
    async def main(ctx):
        peer = (ctx.rank + 1) % ctx.size
        src = (ctx.rank - 1) % ctx.size
        got = await ctx.comm.sendrecv(peer, ctx.rank, source=src)
        return got

    res = run_spmd(main, 6)
    assert res.results == [5, 0, 1, 2, 3, 4]


def test_isend_irecv_wait_all():
    async def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(1, i, tag=i) for i in range(4)]
            await wait_all(reqs)
            return None
        reqs = [ctx.comm.irecv(0, tag=i) for i in range(4)]
        return await wait_all(reqs)

    assert run_spmd(main, 2).results[1] == [0, 1, 2, 3]


def test_probe_sees_queued_message():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, b"xyz", tag=9)
            return None
        ctx.compute(1.0)
        status = ctx.comm.probe()
        assert status is not None and status["tag"] == 9
        assert ctx.comm.probe(tag=5) is None
        return await ctx.comm.recv(0, tag=9)

    assert run_spmd(main, 2).results[1] == b"xyz"


def test_invalid_peer_and_tag_raise():
    async def bad_dest(ctx):
        await ctx.comm.send(99, None)

    async def bad_tag(ctx):
        await ctx.comm.send(0, None, tag=-5)

    for prog in (bad_dest, bad_tag):
        with pytest.raises(TaskFailedError) as ei:
            run_spmd(prog, 2)
        assert isinstance(ei.value.original, MatchingError)


def test_eager_timing_latency_and_bandwidth():
    net = NetworkModel(
        latency=1.0, bandwidth=100.0, o_send=0.1, o_recv=0.2,
        eager_threshold=1 << 30, min_message_bytes=0,
    )

    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, None, size=200)  # 2s wire copy
            return ctx.clock
        got = await ctx.comm.recv(0)
        assert got is None
        return ctx.clock

    res = run_spmd(main, 2, config=SimConfig(network=net))
    # Sender: o_send + 200/100 = 2.1.  Receiver: posted at 0, message
    # arrives at sender_done + latency = 3.1 >= post + o_recv.
    assert res.results[0] == pytest.approx(2.1)
    assert res.results[1] == pytest.approx(3.1)


def test_rendezvous_blocks_sender_until_recv_posted():
    net = NetworkModel(
        latency=1.0, bandwidth=100.0, o_send=0.1, o_recv=0.2,
        eager_threshold=10, min_message_bytes=0,
    )

    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, None, size=1000)  # rendezvous
            return ctx.clock
        ctx.compute(50.0)  # receiver arrives late
        await ctx.comm.recv(0)
        return ctx.clock

    res = run_spmd(main, 2, config=SimConfig(network=net))
    # Transfer starts at max(0 + 0.1, 50 + 0.2) = 50.2; sender done at
    # 50.2 + 10; receiver done at 50.2 + 1 + 10.
    assert res.results[0] == pytest.approx(60.2)
    assert res.results[1] == pytest.approx(61.2)


def test_rendezvous_recv_first_also_synchronizes():
    net = NetworkModel(
        latency=0.5, bandwidth=1000.0, o_send=0.0, o_recv=0.0,
        eager_threshold=10, min_message_bytes=0,
    )

    async def main(ctx):
        if ctx.rank == 1:
            await ctx.comm.recv(0)
            return ctx.clock
        ctx.compute(20.0)  # sender arrives late
        await ctx.comm.send(1, None, size=2000)
        return ctx.clock

    res = run_spmd(main, 2, config=SimConfig(network=net))
    assert res.results[0] == pytest.approx(22.0)  # 20 + 2000/1000
    assert res.results[1] == pytest.approx(22.5)  # + latency


def test_zero_cost_network_moves_no_time():
    async def main(ctx):
        peer = 1 - ctx.rank
        await ctx.comm.sendrecv(peer, "v", source=peer)
        return ctx.clock

    res = run_spmd(main, 2, config=SimConfig(network=ZERO_COST))
    assert res.clocks == [0.0, 0.0]


def test_byte_accounting():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(1, None, size=500)
        else:
            await ctx.comm.recv(0)

    res = run_spmd(main, 2)
    assert res.total_messages == 1
    assert res.total_bytes == 500
