"""LULESH skeleton and the 3-D grid topology behind it."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ChameleonConfig, ChameleonTracer
from repro.scalatrace import Op, ScalaTraceTracer
from repro.simmpi import SimConfig, Grid3D, ZERO_COST, cube_grid, run_spmd
from repro.workloads import LULESH, NullTracer, make_workload


class TestGrid3D:
    def test_coords_roundtrip(self):
        g = Grid3D(3, 3, 3)
        for rank in range(g.size):
            assert g.rank(*g.coords(rank)) == rank

    def test_neighbors(self):
        g = Grid3D(3, 3, 3)
        center = g.rank(1, 1, 1)
        assert len(g.face_neighbors(center)) == 6
        corner = g.rank(0, 0, 0)
        assert len(g.face_neighbors(corner)) == 3
        assert g.neighbor(corner, -1, 0, 0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid3D(0, 2, 2)
        with pytest.raises(ValueError):
            Grid3D(2, 2, 2).coords(8)
        with pytest.raises(ValueError):
            Grid3D(2, 2, 2).rank(2, 0, 0)

    @given(st.integers(1, 5))
    def test_cube_grid_exact(self, k):
        g = cube_grid(k**3)
        assert (g.nx, g.ny, g.nz) == (k, k, k)

    def test_cube_grid_rejects_non_cubes(self):
        for bad in (2, 12, 30, 100):
            with pytest.raises(ValueError):
                cube_grid(bad)


class TestLULESH:
    def run_app(self, nprocs, **kw):
        wl = LULESH(edge_elems=6, iterations=3, **kw)

        async def main(ctx):
            await wl.run(ctx, NullTracer(ctx))
            return ctx.clock

        return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))

    def test_requires_cube(self):
        from repro.simmpi import TaskFailedError

        with pytest.raises(TaskFailedError):
            self.run_app(6)

    def test_runs_on_cubes(self):
        for p in (1, 8, 27):
            res = self.run_app(p)
            assert all(c > 0 for c in res.clocks)

    def test_registry(self):
        wl = make_workload("lulesh", edge_elems=4, iterations=2)
        assert isinstance(wl, LULESH)

    def test_validation(self):
        with pytest.raises(ValueError):
            LULESH(edge_elems=0)

    def test_trace_structure(self):
        async def main(ctx):
            tracer = ScalaTraceTracer(ctx)
            await LULESH(edge_elems=6, iterations=3).run(ctx, tracer)
            return await tracer.finalize()

        trace = run_spmd(main, 8, config=SimConfig(network=ZERO_COST)).results[0]
        ops = {l.record.op for l in trace.leaves()}
        assert Op.ISEND in ops and Op.RECV in ops and Op.ALLREDUCE in ops
        frames = {f for l in trace.leaves() for f in l.record.frames}
        for name in ("CalcForceForNodes", "LagrangeElements",
                     "CalcTimeConstraints"):
            assert any(name in f for f in frames)

    def test_chameleon_clusters_lulesh(self):
        async def main(ctx):
            tracer = ChameleonTracer(ctx, ChameleonConfig(k=9))
            await LULESH(edge_elems=6, iterations=8).run(ctx, tracer)
            trace = await tracer.finalize()
            return {"trace": trace, "cstats": tracer.cstats}

        res = run_spmd(main, 8, config=SimConfig(network=ZERO_COST)).results
        cs = res[0]["cstats"]
        assert cs.state_counts.get("clustering", 0) == 1
        assert cs.state_counts.get("lead", 0) >= 5
        # a 2x2x2 cube: all 8 ranks are corners -> one behaviour class
        assert cs.num_callpaths == 1
        trace = res[0]["trace"]
        covered = set()
        for l in trace.leaves():
            covered.update(l.record.participants.ranks())
        assert covered == set(range(8))

    def test_27_ranks_multiple_classes(self):
        async def main(ctx):
            tracer = ChameleonTracer(ctx, ChameleonConfig(k=9))
            await LULESH(edge_elems=4, iterations=6).run(ctx, tracer)
            await tracer.finalize()
            return tracer.cstats

        cs = run_spmd(main, 27, config=SimConfig(network=ZERO_COST)).results[0]
        # 3x3x3: corner/edge/face/interior classes appear
        assert cs.num_callpaths > 1
