"""Synthetic workloads: controlled phase structure and cluster counts."""

import pytest

from repro.core import ChameleonConfig, ChameleonTracer
from repro.simmpi import SimConfig, ZERO_COST, run_spmd
from repro.workloads import (
    AlternatingPhases,
    BehaviourGroups,
    UniformCollective,
    make_workload,
)


def run_chameleon(workload, nprocs, k=4):
    async def main(ctx):
        tracer = ChameleonTracer(ctx, ChameleonConfig(k=k))
        await workload.run(ctx, tracer)
        await tracer.finalize()
        return tracer.cstats

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results


class TestUniform:
    def test_single_cluster_and_lead_phase(self):
        cs = run_chameleon(UniformCollective(iterations=8), 8, k=1)[0]
        assert cs.num_callpaths == 1
        assert cs.state_counts["lead"] >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformCollective(iterations=0)


class TestAlternating:
    def test_forces_reclustering(self):
        wl = AlternatingPhases(iterations=20, period=5)
        cs = run_chameleon(wl, 4)[0]
        base = run_chameleon(UniformCollective(iterations=20), 4)[0]
        assert cs.reclusterings > base.reclusterings

    def test_period_one_never_stabilizes(self):
        wl = AlternatingPhases(iterations=10, period=1)
        cs = run_chameleon(wl, 4)[0]
        # callpath changes every marker: no online clustering at all
        assert cs.state_counts.get("clustering", 0) == 0
        assert cs.state_counts.get("all-tracing", 0) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            AlternatingPhases(period=0)


class TestBehaviourGroups:
    @pytest.mark.parametrize("groups", [1, 2, 3, 4])
    def test_callpath_count_scales_with_groups(self, groups):
        # each group's chain has first/middle/last positional variants, so
        # the Call-Path classes are between `groups` and `3 * groups`
        wl = BehaviourGroups(groups=groups, iterations=6)
        cs = run_chameleon(wl, 8, k=groups)[0]
        assert groups <= cs.num_callpaths <= 3 * groups
        # more groups -> at least as many classes
        if groups > 1:
            fewer = run_chameleon(
                BehaviourGroups(groups=groups - 1, iterations=6), 8,
                k=groups,
            )[0]
            assert cs.num_callpaths >= fewer.num_callpaths

    def test_needs_enough_ranks(self):
        from repro.simmpi import TaskFailedError
        from repro.workloads import NullTracer

        async def main(ctx):
            await BehaviourGroups(groups=5, iterations=1).run(
                ctx, NullTracer(ctx)
            )

        with pytest.raises(TaskFailedError):
            run_spmd(main, 3)

    def test_registry_names(self):
        assert isinstance(make_workload("uniform"), UniformCollective)
        assert isinstance(make_workload("alternating"), AlternatingPhases)
        assert isinstance(make_workload("groups"), BehaviourGroups)
