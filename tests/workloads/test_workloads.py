"""Workload skeletons: structure, determinism, and Chameleon interaction."""

import pytest

from repro.core import ChameleonConfig, ChameleonTracer
from repro.scalatrace import Op, ScalaTraceTracer
from repro.simmpi import SimConfig, ZERO_COST, run_spmd
from repro.workloads import (
    BT,
    CG,
    EMF,
    LU,
    LUModified,
    LUWeak,
    NullTracer,
    POP,
    SP,
    Sweep3D,
    UniformCollective,
    convergence_iters,
    make_workload,
    rounds_for,
    workload_names,
)


def run_app(workload, nprocs):
    async def main(ctx):
        await workload.run(ctx, NullTracer(ctx))
        return ctx.clock

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST))


def run_scalatrace(workload, nprocs):
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        await workload.run(ctx, tracer)
        return await tracer.finalize()

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results[0]


def run_chameleon(workload, nprocs, **cfg):
    config = ChameleonConfig(**cfg)

    async def main(ctx):
        tracer = ChameleonTracer(ctx, config)
        await workload.run(ctx, tracer)
        trace = await tracer.finalize()
        return {"trace": trace, "cstats": tracer.cstats}

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results


class TestRegistry:
    def test_names_cover_paper_benchmarks(self):
        names = workload_names()
        for required in ("bt", "sp", "lu", "luw", "pop", "sweep3d", "emf"):
            assert required in names

    def test_make_workload(self):
        wl = make_workload("bt", problem_class="A", iterations=3)
        assert isinstance(wl, BT)
        assert wl.iterations == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_workload("nope")


@pytest.mark.parametrize(
    "factory",
    [
        lambda: BT(problem_class="A", iterations=3),
        lambda: SP(problem_class="A", iterations=3),
        lambda: LU(problem_class="A", iterations=3),
        lambda: LUWeak(per_rank_grid=8, iterations=3),
        lambda: CG(problem_class="A", iterations=3),
        lambda: Sweep3D(nx=8, ny=8, nz=8, iterations=2),
        lambda: POP(grid_points=64, block=8, iterations=3),
        lambda: EMF(total_tasks=32),
        lambda: UniformCollective(iterations=3),
    ],
    ids=["bt", "sp", "lu", "luw", "cg", "sweep3d", "pop", "emf", "uniform"],
)
class TestAllWorkloadsRun:
    def test_runs_without_deadlock(self, factory):
        res = run_app(factory(), 8)
        assert all(c > 0 for c in res.clocks)

    def test_deterministic(self, factory):
        a = run_app(factory(), 8)
        b = run_app(factory(), 8)
        assert a.clocks == b.clocks
        assert a.total_messages == b.total_messages

    def test_traceable(self, factory):
        trace = run_scalatrace(factory(), 8)
        assert trace is not None
        assert trace.expanded_count() > 0


class TestCommunicationStructure:
    def test_bt_has_three_solve_phases(self):
        trace = run_scalatrace(BT(problem_class="A", iterations=4), 4)
        frames = {f for l in trace.leaves() for f in l.record.frames}
        for name in ("copy_faces", "x_solve", "y_solve", "z_solve"):
            assert any(name in f for f in frames)

    def test_lu_wavefront_order(self):
        # LU must not deadlock even though receives precede sends: the
        # corner rank kick-starts the wavefront.
        res = run_app(LU(problem_class="A", iterations=2), 16)
        assert res.max_time > 0

    def test_lu_compresses_to_constant_size(self):
        small = run_scalatrace(LU(problem_class="A", iterations=3), 4)
        large = run_scalatrace(LU(problem_class="A", iterations=9), 4)
        # PRSD loop compression: 3x the timesteps, same trace skeleton
        assert large.leaf_count() == small.leaf_count()

    def test_strong_scaling_reduces_per_rank_work(self):
        t4 = run_app(BT(problem_class="A", iterations=2), 4).max_time
        t16 = run_app(BT(problem_class="A", iterations=2), 16).max_time
        assert t16 < t4

    def test_weak_scaling_holds_per_rank_work(self):
        t4 = run_app(LUWeak(per_rank_grid=8, iterations=2), 4).max_time
        t16 = run_app(LUWeak(per_rank_grid=8, iterations=2), 16).max_time
        # weak scaling: roughly constant (communication grows slightly)
        assert t16 < 2.5 * t4

    def test_sweep3d_wavefront_imbalance_in_histograms(self):
        trace = run_scalatrace(Sweep3D(nx=8, ny=8, nz=8, iterations=2), 4)
        hists = [l.record.dhist for l in trace.leaves() if l.record.dhist.total]
        assert any(h.max > h.min for h in hists)

    def test_pop_irregular_convergence(self):
        iters = {convergence_iters(s) for s in range(20)}
        assert len(iters) > 3  # actually irregular

    def test_emf_rounds_match_paper(self):
        assert rounds_for(126) == 288
        assert rounds_for(251) == 144
        assert rounds_for(501) == 72
        assert rounds_for(1001) == 36

    def test_emf_needs_two_ranks(self):
        with pytest.raises(Exception):
            run_app(EMF(total_tasks=8), 1)

    def test_emf_compresses_to_few_prsd_events(self):
        """Paper: 'intra-compression reduces all MPI events to just 6 PRSD
        events' — the strided master fan-out and hub worker events."""
        trace = run_scalatrace(EMF(total_tasks=64), 9)
        assert trace.leaf_count() <= 8
        assert trace.expanded_count() > 50

    def test_emf_master_send_pattern(self):
        trace = run_scalatrace(EMF(total_tasks=64), 9)
        sends = [
            l.record
            for l in trace.leaves()
            if l.record.op is Op.SEND and 0 in l.record.participants.ranks()
        ]
        assert sends
        master_send = sends[0]
        p = master_send.dest.pattern
        assert p is not None and p.stride == 1 and p.length == 8


class TestChameleonOnWorkloads:
    def test_bt_reaches_lead_phase(self):
        results = run_chameleon(BT(problem_class="A", iterations=10), 16, k=3)
        cs = results[0]["cstats"]
        assert cs.state_counts["clustering"] == 1
        assert cs.state_counts["lead"] >= 6

    def test_lu_modified_forces_reclustering(self):
        wl = LUModified(problem_class="A", iterations=12, phase_period=4)
        results = run_chameleon(wl, 4, k=9)
        cs = results[0]["cstats"]
        base = run_chameleon(LU(problem_class="A", iterations=12), 4, k=9)[0][
            "cstats"
        ]
        assert cs.reclusterings > base.reclusterings

    def test_pop_clusters_with_dedup_filter(self):
        wl = POP(grid_points=64, block=8, iterations=8)
        with_filter = run_chameleon(wl, 4, k=3, signature_filter="dedup")[0][
            "cstats"
        ]
        without = run_chameleon(
            POP(grid_points=64, block=8, iterations=8), 4, k=3
        )[0]["cstats"]
        # irregular convergence: raw sequence signatures never stabilize,
        # the dedup filter (paper's automatic parameter filter) does
        assert without.state_counts["clustering"] == 0
        assert with_filter.state_counts["clustering"] >= 1
        assert with_filter.num_callpaths <= 3 or with_filter.k_used >= 1

    def test_emf_two_clusters(self):
        results = run_chameleon(EMF(total_tasks=72), 9, k=2)
        cs = results[0]["cstats"]
        assert cs.num_callpaths == 2  # master vs workers (Table I: K=2)

    def test_uniform_single_cluster(self):
        results = run_chameleon(UniformCollective(iterations=8), 8, k=4)
        cs = results[0]["cstats"]
        assert cs.num_callpaths == 1
