"""AMG workload + failure-injection behaviour across the stack."""

import pytest

from repro.core import ChameleonConfig, ChameleonTracer
from repro.scalatrace import ScalaTraceTracer, Trace
from repro.simmpi import (
    SimConfig,
    DeadlockError,
    TaskFailedError,
    ZERO_COST,
    run_spmd,
)
from repro.workloads import AMG, NullTracer, make_workload


class TestAMG:
    def test_registry(self):
        assert isinstance(make_workload("amg", iterations=2), AMG)

    def test_validation(self):
        with pytest.raises(ValueError):
            AMG(levels=0)

    def test_runs(self):
        async def main(ctx):
            await AMG(fine_points=1 << 10, levels=3, iterations=3).run(
                ctx, NullTracer(ctx)
            )
            return ctx.clock

        res = run_spmd(main, 8, config=SimConfig(network=ZERO_COST))
        assert all(c > 0 for c in res.clocks)

    def test_message_sizes_shrink_with_level(self):
        wl = AMG(fine_points=1 << 12, levels=3)
        sizes = [wl.level_bytes(lv, 8) for lv in range(3)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_coarse_levels_engage_fewer_ranks(self):
        async def main(ctx):
            tracer = ScalaTraceTracer(ctx)
            await AMG(fine_points=1 << 10, levels=3, iterations=2).run(
                ctx, tracer
            )
            return await tracer.finalize()

        trace = run_spmd(main, 8, config=SimConfig(network=ZERO_COST)).results[0]
        from repro.scalatrace import Op

        send_groups = {
            l.record.participants.count
            for l in trace.leaves()
            if l.record.op is Op.ISEND
        }
        # fine level: ~all ranks; coarser levels: strided subsets
        assert len(send_groups) >= 2

    def test_chameleon_on_amg(self):
        async def main(ctx):
            tracer = ChameleonTracer(ctx, ChameleonConfig(k=9))
            await AMG(fine_points=1 << 10, levels=3, iterations=8).run(
                ctx, tracer
            )
            await tracer.finalize()
            return tracer.cstats

        cs = run_spmd(main, 8, config=SimConfig(network=ZERO_COST)).results[0]
        assert cs.state_counts.get("clustering", 0) >= 1
        assert cs.state_counts.get("lead", 0) >= 4


class TestFailureInjection:
    def test_workload_exception_mid_run_is_wrapped(self):
        async def main(ctx):
            tracer = ScalaTraceTracer(ctx)
            with ctx.frame("a"):
                await tracer.allreduce(0.0)
            if ctx.rank == 1:
                raise RuntimeError("injected")
            with ctx.frame("b"):
                await tracer.allreduce(0.0)

        with pytest.raises(TaskFailedError) as ei:
            run_spmd(main, 4)
        assert ei.value.rank == 1
        assert "injected" in str(ei.value.original)

    def test_mismatched_marker_calls_deadlock_detected(self):
        """A rank skipping the marker breaks the collective vote: the
        simulator must report a deadlock, not hang."""

        async def main(ctx):
            tracer = ChameleonTracer(ctx, ChameleonConfig(k=2))
            for step in range(4):
                with ctx.frame("k"):
                    await tracer.allreduce(0.0, size=8)
                if not (ctx.rank == 2 and step == 2):
                    await tracer.marker()
            await tracer.finalize()

        with pytest.raises((DeadlockError, TaskFailedError)):
            run_spmd(main, 4, config=SimConfig(max_steps=200_000))

    def test_corrupt_trace_file_rejected(self, tmp_path):
        path = tmp_path / "bad.st"
        path.write_text("#scalatrace v1 nprocs=2 origin=0\nev bogus line\n")
        with pytest.raises(ValueError):
            Trace.load(str(path))

    def test_truncated_loop_rejected(self, tmp_path):
        path = tmp_path / "trunc.st"
        path.write_text("#scalatrace v1 nprocs=2 origin=0\nloop 5 {\n")
        with pytest.raises(ValueError):
            Trace.load(str(path))

    def test_replay_of_foreign_nprocs_does_not_crash(self):
        """Replaying a trace on fewer ranks than recorded drops
        out-of-range endpoints instead of crashing."""

        async def main(ctx):
            tracer = ScalaTraceTracer(ctx)
            for _ in range(3):
                with ctx.frame("x"):
                    if ctx.rank + 1 < ctx.size:
                        await tracer.send(ctx.rank + 1, None, size=16)
                    if ctx.rank > 0:
                        await tracer.recv(ctx.rank - 1)
            return await tracer.finalize()

        trace = run_spmd(main, 8, config=SimConfig(network=ZERO_COST)).results[0]
        from repro.replay import replay_trace

        result = replay_trace(trace, nprocs=3)
        assert result.time >= 0

    def test_engine_survives_tracer_internal_error(self):
        """A broken cost model surfaces as TaskFailedError with the rank."""
        from repro.scalatrace import InstrumentationCostModel

        with pytest.raises(ValueError):
            InstrumentationCostModel(per_event_record=-1.0)
