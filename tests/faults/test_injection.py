"""Injected faults: the no-op guarantee, seeded determinism, and the
observability of every fault event."""

import json

import pytest

from repro.api import run as api_run
from repro.faults.plan import ComputeFault, FaultPlan, LinkFault, MessageFaults
from repro.harness.engine import ExperimentEngine
from repro.harness.runner import Mode, run_mode
from repro.obs import Recorder, export_chrome_trace
from repro.workloads.registry import make_workload

UNIFORM = {"iterations": 4}


@pytest.fixture
def engine():
    return ExperimentEngine(jobs=1, cache=None)


def _run(engine, plan, workload="uniform", nprocs=4, instrument=None):
    return api_run(
        workload, nprocs, Mode.CHAMELEON, workload_params=UNIFORM,
        engine=engine, faults=plan, instrument=instrument,
    )


class TestNoOpGuarantee:
    def test_empty_plan_is_bit_identical(self):
        # Bypass make_cell (which normalizes empty plans away) so the
        # injector really is installed — and must not perturb anything.
        wl = make_workload("uniform", **UNIFORM)
        baseline = run_mode(wl, 4, Mode.CHAMELEON)
        empty = run_mode(
            make_workload("uniform", **UNIFORM), 4, Mode.CHAMELEON,
            faults=FaultPlan(),
        )
        assert empty.clocks == baseline.clocks
        assert empty.max_time == baseline.max_time
        assert empty.fingerprint() == baseline.fingerprint()
        assert empty.failed_ranks == ()
        assert "fault_summary" not in empty.extra

    def test_make_cell_normalizes_empty_plan(self, engine):
        a = _run(engine, None)
        b = _run(engine, FaultPlan())
        assert a.fingerprint() == b.fingerprint()


class TestDeterminism:
    def test_same_seed_same_plan_byte_identical(self, engine):
        plan = FaultPlan(
            seed=1234,
            messages=MessageFaults(drop_prob=0.2, delay_prob=0.2),
        )
        first = _run(engine, plan)
        second = _run(engine, plan)
        assert first.fingerprint() == second.fingerprint()
        assert first.clocks == second.clocks
        assert (first.extra.get("fault_summary")
                == second.extra.get("fault_summary"))

    def test_seed_changes_the_draws(self, engine):
        summaries = []
        for seed in (1, 2, 3):
            plan = FaultPlan(seed=seed, messages=MessageFaults(drop_prob=0.3))
            res = _run(engine, plan)
            summaries.append(res.extra["fault_summary"]["drop"])
        # three different seeds giving three identical drop counts would
        # mean the seed is ignored; any variation proves it is not
        assert len(set(summaries)) > 1 or summaries[0] > 0


class TestMessageFaults:
    def test_drops_are_counted_and_survivable(self, engine):
        plan = FaultPlan(seed=7, messages=MessageFaults(drop_prob=0.2))
        res = _run(engine, plan)
        summary = res.extra["fault_summary"]
        assert summary["drop"] > 0
        assert res.failed_ranks == ()
        assert res.trace is not None

    def test_delays_slow_the_run(self, engine):
        base = _run(engine, None)
        plan = FaultPlan(
            seed=7, messages=MessageFaults(delay_prob=1.0, delay=1e-3)
        )
        res = _run(engine, plan)
        assert res.extra["fault_summary"]["delay"] > 0
        assert res.max_time > base.max_time

    def test_degraded_link_slows_the_run(self, engine):
        base = _run(engine, None)
        plan = FaultPlan(links=(LinkFault(src=0, dest=1, latency_factor=8.0,
                                          bandwidth_factor=8.0),))
        res = _run(engine, plan)
        assert res.max_time > base.max_time

    def test_compute_noise_perturbs_clocks(self, engine):
        base = _run(engine, None)
        plan = FaultPlan(
            seed=5, compute=(ComputeFault(rank=1, slowdown=2.0, jitter=0.1),)
        )
        res = _run(engine, plan)
        assert res.extra["fault_summary"]["compute"] > 0
        assert res.clocks != base.clocks


class TestObservability:
    def test_fault_events_reach_the_recorder_and_chrome_trace(
        self, engine, tmp_path
    ):
        plan = FaultPlan(
            seed=7,
            messages=MessageFaults(drop_prob=0.3, delay_prob=0.3),
        )
        res = _run(engine, plan, instrument=Recorder())
        assert res.obs is not None
        fault_instants = res.obs.instants_for(cat="fault")
        assert fault_instants, "injected faults must be visible as events"
        names = {i.name for i in fault_instants}
        assert names & {"msg_lost", "msg_delayed"}
        # and they survive the Chrome trace export
        out = tmp_path / "t.trace.json"
        export_chrome_trace(res.obs, str(out))
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "fault" in cats

    def test_fault_metrics_in_registry(self, engine):
        plan = FaultPlan(seed=7, messages=MessageFaults(drop_prob=0.3))
        res = _run(engine, plan, instrument=Recorder())
        reg = res.registry()
        assert reg.has("fault/messages_lost") or res.extra[
            "fault_summary"]["lost"] == 0
