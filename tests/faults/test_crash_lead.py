"""Crash acceptance: killing a lead mid-run degrades gracefully.

The paper's protocol has no fault story; ours must (a) keep every
survivor running, (b) re-elect a replacement lead from the dead lead's
own cluster (members are signature-equivalent, so any survivor's trace
stands in for the group), and (c) keep the online trace within 5% of the
fault-free event count.
"""

import pytest

from repro.api import run as api_run
from repro.faults.plan import CrashFault, FaultPlan
from repro.harness.engine import ExperimentEngine
from repro.harness.runner import Mode
from repro.obs import Recorder

BT = {"problem_class": "A", "iterations": 24}
NPROCS = 16


@pytest.fixture(scope="module")
def engine():
    return ExperimentEngine(jobs=1, cache=None)


@pytest.fixture(scope="module")
def baseline(engine):
    return api_run("bt", NPROCS, Mode.CHAMELEON, workload_params=BT,
                   engine=engine)


@pytest.fixture(scope="module")
def crashed(engine, baseline):
    # Crash a non-zero lead well past the clustering warm-up, so the run
    # exercises re-election rather than the rank-0 degraded fallback.
    victim = min(r for r in baseline.lead_ranks if r != 0)
    plan = FaultPlan(
        seed=11,
        crashes=(CrashFault(rank=victim, time=baseline.max_time * 0.7),),
    )
    result = api_run("bt", NPROCS, Mode.CHAMELEON, workload_params=BT,
                     engine=engine, faults=plan, instrument=Recorder())
    return victim, plan, result


def test_run_completes_with_partial_failure(baseline, crashed):
    victim, _, result = crashed
    assert result.failed_ranks == (victim,)
    assert result.trace is not None
    assert result.extra["fault_summary"]["crash"] == 1


def test_survivors_never_hit_the_timeout_safety_net(crashed):
    # The crash sweep releases every in-flight op touching the dead rank;
    # nothing should be left for the op_timeout fallback to clean up.
    _, _, result = crashed
    assert result.extra["fault_summary"]["timeout"] == 0


def test_replacement_lead_comes_from_the_same_cluster(baseline, crashed):
    victim, _, result = crashed
    assert result.obs is not None
    elections = [
        i for i in result.obs.instants_for(cat="fault", name="lead_reelection")
        if i.args and i.args.get("is_new_lead")
    ]
    assert elections, "killing a lead must trigger a re-election"
    (event,) = elections
    new_lead = event.rank
    assert victim in event.args["failed"]
    assert new_lead in event.args["cluster"]
    assert new_lead not in baseline.lead_ranks
    assert new_lead in result.lead_ranks
    # exactly one replacement: the dead lead swapped for a member of its
    # own cluster, every other lead unchanged
    assert result.lead_ranks == (baseline.lead_ranks - {victim}) | {new_lead}


def test_online_trace_stays_within_5_percent(baseline, crashed):
    _, _, result = crashed
    base = baseline.trace.leaf_count()
    faulted = result.trace.leaf_count()
    assert abs(faulted - base) / base <= 0.05


def test_crash_run_is_deterministic(engine, baseline, crashed):
    victim, plan, result = crashed
    again = api_run("bt", NPROCS, Mode.CHAMELEON, workload_params=BT,
                    engine=engine, faults=plan)
    assert again.fingerprint() == result.fingerprint()
    assert again.failed_ranks == (victim,)


def test_crash_and_degraded_events_are_observable(crashed):
    _, _, result = crashed
    crash_events = result.obs.instants_for(cat="fault", name="crash")
    assert len(crash_events) == 1
    (crash,) = crash_events
    assert crash.rank == crashed[0]
