"""RunCache integrity: corrupt entries are misses, never stale results."""

import pickle

from repro.harness.cache import RunCache, digest_of
from repro.obs import Recorder


def _store(cache, key="payload"):
    digest = digest_of(key)
    cache.put(digest, {"value": 42})
    return digest


def test_round_trip(tmp_path):
    cache = RunCache(tmp_path)
    digest = _store(cache)
    assert cache.get(digest) == {"value": 42}
    assert cache.stats.hits == 1


def test_bit_flip_is_an_invalidating_miss(tmp_path):
    cache = RunCache(tmp_path)
    digest = _store(cache)
    path = cache.path_for(digest)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))

    assert cache.get(digest) is None
    assert cache.stats.invalidated == 1
    assert cache.stats.misses == 1
    assert not path.exists(), "corrupt entries must be deleted"


def test_truncated_entry_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    digest = _store(cache)
    path = cache.path_for(digest)
    path.write_bytes(path.read_bytes()[:10])
    assert cache.get(digest) is None
    assert cache.stats.invalidated == 1


def test_checksum_catches_blob_swap(tmp_path):
    # A structurally valid payload whose blob does not match its checksum
    # must not be served (this is what plain pickling would miss).
    cache = RunCache(tmp_path)
    digest = _store(cache)
    path = cache.path_for(digest)
    payload = pickle.loads(path.read_bytes())
    payload["blob"] = pickle.dumps({"value": 666})
    path.write_bytes(pickle.dumps(payload))
    assert cache.get(digest) is None
    assert cache.stats.invalidated == 1


def test_wrong_schema_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    digest = _store(cache)
    stale = RunCache(tmp_path, schema=cache.schema,
                     fingerprint=cache.fingerprint)
    path = cache.path_for(digest)
    payload = pickle.loads(path.read_bytes())
    payload["schema"] = -1
    path.write_bytes(pickle.dumps(payload))
    assert stale.get(digest) is None
    assert stale.stats.invalidated == 1


def test_corruption_is_observable(tmp_path):
    rec = Recorder()
    cache = RunCache(tmp_path, instrument=rec)
    digest = _store(cache)
    path = cache.path_for(digest)
    path.write_bytes(b"garbage")
    assert cache.get(digest) is None
    events = [i for i in rec.instants if i.name == "cache_corrupt"]
    assert len(events) == 1
    assert events[0].cat == "fault"
    assert events[0].args["digest"] == digest
    assert rec.metrics.value("fault/cache_invalidated") == 1.0
