"""FaultPlan: validation, serialization, and emptiness semantics."""

import pytest

from repro.faults.plan import (
    ComputeFault,
    CrashFault,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    MessageFaults,
)


def full_plan() -> FaultPlan:
    return FaultPlan(
        seed=42,
        crashes=(CrashFault(rank=1, time=0.5),),
        messages=MessageFaults(drop_prob=0.05, dup_prob=0.01,
                               delay_prob=0.1, delay=2e-4),
        links=(LinkFault(src=0, dest=3, latency_factor=4.0),),
        compute=(ComputeFault(rank=2, slowdown=1.5, jitter=0.1),),
        op_timeout=0.02,
    )


class TestValidation:
    def test_empty_plan_is_empty_and_valid(self):
        plan = FaultPlan()
        assert plan.is_empty()
        plan.validate(nprocs=4)

    def test_full_plan_is_not_empty(self):
        plan = full_plan()
        assert not plan.is_empty()
        plan.validate(nprocs=8)

    @pytest.mark.parametrize("prob", [-0.1, 1.5])
    def test_probability_bounds(self, prob):
        plan = FaultPlan(messages=MessageFaults(drop_prob=prob))
        with pytest.raises(FaultPlanError, match="drop_prob"):
            plan.validate()

    def test_negative_crash_time(self):
        plan = FaultPlan(crashes=(CrashFault(rank=0, time=-1.0),))
        with pytest.raises(FaultPlanError, match="negative"):
            plan.validate()

    def test_rank_outside_world(self):
        plan = FaultPlan(crashes=(CrashFault(rank=9, time=0.1),))
        plan.validate()  # fine without a world size
        with pytest.raises(FaultPlanError, match="outside world"):
            plan.validate(nprocs=4)

    def test_crashing_every_rank_rejected(self):
        plan = FaultPlan(
            crashes=tuple(CrashFault(rank=r, time=0.1) for r in range(4))
        )
        with pytest.raises(FaultPlanError, match="crashes every rank"):
            plan.validate(nprocs=4)

    def test_non_positive_op_timeout(self):
        with pytest.raises(FaultPlanError, match="op_timeout"):
            FaultPlan(op_timeout=0.0).validate()


class TestSerialization:
    def test_json_round_trip(self):
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"bogus_key": 1})

    def test_malformed_nested_entry_rejected(self):
        with pytest.raises(FaultPlanError, match="malformed"):
            FaultPlan.from_dict({"crashes": [{"rank": 0, "when": 1.0}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_load_validates(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            FaultPlan(messages=MessageFaults(drop_prob=2.0)).to_json()
        )
        with pytest.raises(FaultPlanError, match="drop_prob"):
            FaultPlan.load(str(path))

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(full_plan().to_json())
        assert FaultPlan.load(str(path)) == full_plan()
