"""Op-timeout victim selection follows virtual-time causality.

When the op-timeout backstop has to release orphaned operations, it must
pick the *earliest-posted* blocked operation (ties broken by rank), not the
lowest-ranked blocked task: a low rank that blocked late is causally behind
a high rank that has been waiting since t=0, and releasing in rank order
would replay timeouts in an order no real timeout mechanism could produce.
"""

from repro.faults import LOST
from repro.faults.plan import CrashFault, FaultPlan
from repro.obs import Recorder
from repro.simmpi import run_spmd

#: Keeps the injector active for the whole run without ever firing:
#: rank 3 finishes at a tiny virtual clock, far before t=1e9.
NEVER_PLAN = FaultPlan(crashes=(CrashFault(rank=3, time=1e9),))


async def _staggered_blockers(ctx):
    if ctx.rank in (0, 3):
        return "done"  # rank 3 never sends: ranks 1 and 2 are orphaned
    if ctx.rank == 2:
        # Blocks immediately: post_time 0.0.
        return await ctx.comm.recv(source=3, tag=7)
    # Rank 1 computes first, then blocks: post_time 1.0.  Under the old
    # lowest-rank rule it would be released *before* rank 2 despite
    # having waited strictly less virtual time.
    ctx.compute(1.0)
    return await ctx.comm.recv(source=3, tag=7)


class TestReleaseOrder:
    def test_earliest_posted_operation_released_first(self):
        rec = Recorder()
        result = run_spmd(_staggered_blockers, 4, instrument=rec,
                          faults=NEVER_PLAN)
        timeouts = [i for i in rec.instants if i.name == "op_timeout"]
        assert [i.rank for i in timeouts] == [2, 1]
        # Release times stay victim-relative: clock + op_timeout each.
        op_timeout = NEVER_PLAN.op_timeout
        assert timeouts[0].ts == op_timeout
        assert timeouts[1].ts == 1.0 + op_timeout
        assert result.results[1] is LOST and result.results[2] is LOST
        assert result.fault_summary["timeout"] == 2
        assert result.failed_ranks == ()

    def test_rank_breaks_post_time_ties(self):
        async def simultaneous(ctx):
            if ctx.rank == 3:
                return "done"
            return await ctx.comm.recv(source=3, tag=7)

        rec = Recorder()
        run_spmd(simultaneous, 4, instrument=rec, faults=NEVER_PLAN)
        timeouts = [i for i in rec.instants if i.name == "op_timeout"]
        assert [i.rank for i in timeouts] == [0, 1, 2]

    def test_release_order_is_deterministic(self):
        first = run_spmd(_staggered_blockers, 4, faults=NEVER_PLAN)
        second = run_spmd(_staggered_blockers, 4, faults=NEVER_PLAN)
        assert first.clocks == second.clocks
        assert first.fault_summary == second.fault_summary
