"""CLI fault surface: run --faults, exit-code mapping, repro chaos."""

import json

import pytest

from repro.cli import main
from repro.faults.plan import CrashFault, FaultPlan, MessageFaults


@pytest.fixture
def drop_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(
        FaultPlan(seed=3, messages=MessageFaults(drop_prob=0.2)).to_json()
    )
    return str(path)


def test_run_with_faults(drop_plan, capsys):
    rc = main(
        ["run", "--workload", "uniform", "--nprocs", "4",
         "--iterations", "4", "--mode", "chameleon",
         "--faults", drop_plan, "--no-cache"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "under fault plan" in out
    assert "fault events:" in out
    assert "drop=" in out


def test_fault_seed_requires_faults():
    with pytest.raises(SystemExit, match="--fault-seed requires"):
        main(["run", "--workload", "uniform", "--nprocs", "4",
              "--fault-seed", "1"])


def test_invalid_plan_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"bogus_key": 1}')
    rc = main(["run", "--workload", "uniform", "--nprocs", "4",
               "--faults", str(bad)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "invalid fault plan" in err
    assert "bogus_key" in err


def test_crash_rank_outside_world_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(
        FaultPlan(crashes=(CrashFault(rank=99, time=0.1),)).to_json()
    )
    rc = main(["run", "--workload", "uniform", "--nprocs", "4",
               "--faults", str(bad)])
    assert rc == 2
    assert "outside world" in capsys.readouterr().err


def test_traceback_flag_reraises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"bogus_key": 1}')
    from repro.faults.plan import FaultPlanError

    with pytest.raises(FaultPlanError):
        main(["--traceback", "run", "--workload", "uniform",
              "--nprocs", "4", "--faults", str(bad)])


def test_chaos_single_scenario_with_report(tmp_path, capsys):
    report_path = tmp_path / "chaos.json"
    rc = main(
        ["chaos", "--workload", "uniform", "--nprocs", "4",
         "--iterations", "4", "--scenario", "drop-messages",
         "--report", str(report_path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "drop-messages" in out
    assert "reruns bit-identical" in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    (scenario,) = report["scenarios"]
    assert scenario["name"] == "drop-messages"
    assert scenario["survived"] and scenario["deterministic"]
    assert scenario["plan"]["messages"]["drop_prob"] == 0.05
    assert "fidelity_delta_pct" in scenario
