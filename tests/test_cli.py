"""CLI: run / info / replay / list / experiment plumbing."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bt" in out and "emf" in out
    assert "table2" in out and "fig9" in out


def test_run_app_mode(capsys):
    rc = main(
        ["run", "--workload", "uniform", "--nprocs", "4", "--mode", "app",
         "--iterations", "3"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "application time" in out


def test_run_and_inspect_and_replay(tmp_path, capsys):
    trace_file = str(tmp_path / "t.st")
    rc = main(
        [
            "run", "--workload", "bt", "--nprocs", "4",
            "--problem-class", "A", "--iterations", "4",
            "--call-frequency", "2", "--mode", "chameleon",
            "-o", trace_file,
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "chameleon overhead" in out
    assert "written to" in out

    assert main(["info", trace_file]) == 0
    out = capsys.readouterr().out
    assert "PRSD events" in out
    assert "events by operation" in out

    assert main(["info", trace_file, "--matrix"]) == 0
    out = capsys.readouterr().out
    assert "communication matrix" in out

    assert main(["replay", trace_file]) == 0
    out = capsys.readouterr().out
    assert "replay time" in out

    assert main(["replay", trace_file, "--reference", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "accuracy vs reference" in out


def test_run_scalatrace_mode(capsys):
    rc = main(
        ["run", "--workload", "uniform", "--nprocs", "4", "--iterations",
         "4", "--mode", "scalatrace"]
    )
    assert rc == 0
    assert "scalatrace overhead" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.slow
def test_experiment_table3(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "Table III" in capsys.readouterr().out


def test_bad_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "does-not-exist"])


def test_timeline_and_diff(tmp_path, capsys):
    a = str(tmp_path / "a.st")
    b = str(tmp_path / "b.st")
    for path, iters in ((a, "4"), (b, "8")):
        assert main(
            ["run", "--workload", "uniform", "--nprocs", "4", "--iterations",
             iters, "--mode", "scalatrace", "-o", path]
        ) == 0
    capsys.readouterr()

    assert main(["timeline", a, "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "rank    0" in out and "busy" in out

    assert main(["diff", a, a]) == 0
    out = capsys.readouterr().out
    assert "similarity 1.0000" in out

    # different iteration counts: similarity drops below the threshold
    assert main(["diff", a, b, "--threshold", "0.99"]) == 1


def test_run_app_mode_warns_on_ignored_output(tmp_path, capsys):
    out_file = tmp_path / "app.st"
    rc = main(
        ["run", "--workload", "uniform", "--nprocs", "4", "--mode", "app",
         "--iterations", "3", "-o", str(out_file)]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "--output ignored" in captured.err
    assert "APP mode" in captured.err
    assert not out_file.exists()


def test_run_traced_mode_does_not_warn(tmp_path, capsys):
    out_file = tmp_path / "t.st"
    rc = main(
        ["run", "--workload", "uniform", "--nprocs", "4",
         "--mode", "chameleon", "--iterations", "3", "-o", str(out_file)]
    )
    assert rc == 0
    assert "--output ignored" not in capsys.readouterr().err
    assert out_file.exists()


def test_engine_flags_and_cache_summary(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["experiment", "table4", "--cache-dir", cache_dir, "--jobs", "1"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "engine:" in first and "0 cache hits" in first
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "hit rate 100%" in second

    assert main(args + ["--no-cache"]) == 0
    third = capsys.readouterr().out
    assert "0 cache hits" in third


def test_run_with_progress_flag(tmp_path, capsys):
    rc = main(
        ["run", "--workload", "uniform", "--nprocs", "4", "--mode", "app",
         "--iterations", "3", "--no-cache", "--progress"]
    )
    assert rc == 0
    err = capsys.readouterr().err
    assert "[engine]" in err and "done" in err
