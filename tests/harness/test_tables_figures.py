"""Table/figure generators produce the paper's structure (scaled down).

These run the real generators at reduced scale; the bench targets under
``benchmarks/`` run them at the configured experiment scale.
"""

import pytest

from repro.harness.tables import table2_configs
from repro.harness import figures, tables


class TestTable2Configs:
    def test_every_paper_benchmark_present(self):
        pgms = {c.pgm for c in table2_configs()}
        assert pgms == {"BT", "LU", "SP", "POP", "S3D", "LUW", "EMF"}

    def test_scaled_calls_match_paper(self):
        for cfg in table2_configs():
            scaled_calls = cfg.iters // cfg.freq
            assert scaled_calls == cfg.paper["calls"], cfg.pgm


@pytest.mark.slow
class TestTableGenerators:
    def test_table2_reproduces_state_counts(self):
        rows, text = tables.table2()
        for row in rows:
            assert row["calls"] == row["paper"]["calls"], row["pgm"]
            assert row["C"] == row["paper"]["C"], row["pgm"]
            assert row["L"] == row["paper"]["L"], row["pgm"]
            assert row["AT"] == row["paper"]["AT"], row["pgm"]
        assert "Table II" in text

    def test_table1_k_and_callpaths(self):
        rows, _ = tables.table1()
        by_pgm = {r["pgm"]: r for r in rows}
        assert by_pgm["EMF"]["measured_callpaths"] == 2
        for row in rows:
            # dynamic-K rule: enough leads for every Call-Path group
            assert row["k_used"] >= min(row["configured_k"],
                                        row["measured_callpaths"])

    def test_table3_direction(self):
        rows, _ = tables.table3(p_list=[4, 9])
        for row in rows:
            # ACURDION (cluster once at finalize) is cheaper in time
            assert row["acurdion"] < row["chameleon"]

    def test_table4_space_claims(self):
        data, text = tables.table4(nprocs=9)
        assert data["non_lead_zero_in_lead_state"]
        # rank 0 allocates own trace + global online trace: biggest average
        avgs = {r: s["avg"] for r, s in data["summary"].items()}
        assert max(avgs, key=avgs.get) == 0


@pytest.mark.slow
class TestFigureGenerators:
    def test_figure4_rows(self):
        rows, text = figures.figure4(benchmarks=["bt"], p_list=[4, 9])
        assert len(rows) == 2
        for r in rows:
            assert r["chameleon_overhead"] >= 0
            assert r["scalatrace_overhead"] >= 0
        assert "Figure 4" in text

    def test_figure5_accuracy_positive(self):
        rows, _ = figures.figure5(benchmarks=["bt"], p_list=[9])
        assert rows[0]["acc_vs_app"] > 0.8

    def test_figure6_weak(self):
        rows, _ = figures.figure6(p_list=[4])
        assert {r["benchmark"] for r in rows} == {"luw", "sweep3d"}

    def test_figure7_weak_replay(self):
        rows, _ = figures.figure7(p_list=[9])
        for r in rows:
            assert r["replay_chameleon"] > 0

    def test_figure8_breakdown(self):
        # P=16: with K=9 leads, 9 of 9 ranks at P=9 would all be leads and
        # the inter-compression asymmetry only shows once P exceeds K
        rows, _ = figures.figure8(benchmarks=["bt"], nprocs=16)
        r = rows[0]
        assert r["st_clustering"] == 0.0
        assert r["ch_clustering"] > 0
        assert r["st_intercompression"] > r["ch_intercompression"]

    def test_figure9_overhead_grows_with_calls(self):
        rows, _ = figures.figure9(nprocs=9)
        assert rows[0]["marker_calls"] < rows[-1]["marker_calls"]
        assert rows[-1]["overhead"] > rows[0]["overhead"]

    def test_figure10_reclustering(self):
        rows, _ = figures.figure10(nprocs=9)
        measured = [r["measured_reclusterings"] for r in rows]
        assert measured[-1] > measured[0]

    def test_figure11_classes(self):
        rows, _ = figures.figure11(nprocs=9, classes=["A", "B"])
        assert [r["class"] for r in rows] == ["A", "B"]
        # larger classes -> larger app time
        assert rows[1]["app_time"] > rows[0]["app_time"]
