"""ExperimentEngine: cells, cache round-trips, parallel/serial identity."""

import pickle

import pytest

import repro
from repro.harness.cache import RunCache, canonical, code_fingerprint
from repro.harness.engine import (
    Cell,
    ExperimentEngine,
    make_cell,
    make_suite_cells,
)
from repro.harness.runner import Mode
from repro.simmpi.simconfig import SimConfig
from repro.simmpi.timing import SLOW_CLUSTER

BT_PARAMS = {"problem_class": "A", "iterations": 4}


def _cell(mode=Mode.CHAMELEON, **kw):
    return make_cell("bt", 4, mode, workload_params=BT_PARAMS, **kw)


class TestCells:
    def test_digest_is_stable_and_order_independent(self):
        a = make_cell("bt", 4, Mode.CHAMELEON,
                      workload_params={"problem_class": "A", "iterations": 4})
        b = make_cell("bt", 4, Mode.CHAMELEON,
                      workload_params={"iterations": 4, "problem_class": "A"})
        assert a.digest() == b.digest()

    def test_digest_separates_inputs(self):
        base = _cell()
        assert base.digest() != _cell(mode=Mode.SCALATRACE).digest()
        slow = _cell(sim=SimConfig(network=SLOW_CLUSTER))
        assert base.digest() != slow.digest()
        assert base.digest() != _cell(call_frequency=2).digest()
        other_params = make_cell(
            "bt", 4, Mode.CHAMELEON,
            workload_params={"problem_class": "A", "iterations": 5},
        )
        assert base.digest() != other_params.digest()

    def test_app_digest_ignores_tracer_config(self):
        # every suite over the same workload shares one APP baseline
        a = _cell(mode=Mode.APP, call_frequency=1)
        b = _cell(mode=Mode.APP, call_frequency=7)
        assert a.digest() == b.digest()

    def test_suite_cells_share_config_and_key(self):
        cells = make_suite_cells(
            "bt", 4,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=BT_PARAMS,
            config_overrides={"algorithm": "kmedoids"},
        )
        assert len({id(c.config) for c in cells}) == 1
        assert len({c.suite_key() for c in cells}) == 1
        assert all(c.config.algorithm == "kmedoids" for c in cells)

    def test_cells_pickle(self):
        cell = _cell()
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_canonical_handles_containers(self):
        assert canonical({"b": 2, "a": 1}) == canonical({"a": 1, "b": 2})
        assert canonical({1, 2}) == canonical({2, 1})
        assert canonical((1.5, "x")) == "(1.5,'x')"


class TestCache:
    def test_round_trip_hit_after_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        engine = ExperimentEngine(jobs=1, cache=cache)
        cell = _cell()
        (first,) = engine.run_cells([cell])
        assert engine.metrics.executed == 1 and engine.metrics.hits == 0
        (second,) = engine.run_cells([cell])
        assert engine.metrics.hits == 1
        assert second.fingerprint() == first.fingerprint()
        assert cache.stats.stores == 1

    def test_cache_survives_new_engine(self, tmp_path):
        cell = _cell()
        (first,) = ExperimentEngine(cache=RunCache(tmp_path)).run_cells([cell])
        fresh = ExperimentEngine(cache=RunCache(tmp_path))
        (second,) = fresh.run_cells([cell])
        assert fresh.metrics.hits == 1 and fresh.metrics.executed == 0
        assert second.fingerprint() == first.fingerprint()

    def test_schema_bump_invalidates(self, tmp_path):
        cell = _cell()
        old = RunCache(tmp_path, schema=1)
        ExperimentEngine(cache=old).run_cells([cell])
        assert len(old.entries()) == 1
        bumped = RunCache(tmp_path, schema=2)
        assert bumped.get(cell.digest()) is None  # different generation
        engine = ExperimentEngine(cache=bumped)
        engine.run_cells([cell])
        assert engine.metrics.executed == 1
        # both generations now coexist; the old one is untouched
        assert len(old.entries()) == 1 and len(bumped.entries()) == 1

    def test_code_fingerprint_partitions_generations(self, tmp_path):
        cell = _cell()
        real = RunCache(tmp_path)
        ExperimentEngine(cache=real).run_cells([cell])
        edited = RunCache(tmp_path, fingerprint="f" * 64)
        assert edited.generation != real.generation
        assert edited.get(cell.digest()) is None

    def test_corrupt_entry_is_deleted_and_missed(self, tmp_path):
        cache = RunCache(tmp_path)
        cell = _cell()
        ExperimentEngine(cache=cache).run_cells([cell])
        path = cache.path_for(cell.digest())
        path.write_bytes(b"not a pickle")
        assert cache.get(cell.digest()) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()

    def test_wrong_digest_payload_rejected(self, tmp_path):
        cache = RunCache(tmp_path)
        cell = _cell()
        ExperimentEngine(cache=cache).run_cells([cell])
        other = _cell(mode=Mode.SCALATRACE).digest()
        # graft the entry onto a different key: content addressing rejects it
        payload = cache.path_for(cell.digest()).read_bytes()
        target = cache.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(payload)
        assert cache.get(other) is None

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        ExperimentEngine(cache=cache).run_cells([_cell()])
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_fingerprint_is_cached_per_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestScheduling:
    def test_within_batch_dedup(self):
        engine = ExperimentEngine(jobs=1)
        cell = _cell()
        results = engine.run_cells([cell, cell, cell])
        assert engine.metrics.executed == 1
        assert engine.metrics.deduped == 2
        assert results[0] is results[1] is results[2]

    def test_progress_events(self, tmp_path):
        events = []
        engine = ExperimentEngine(
            jobs=1, cache=RunCache(tmp_path), progress=events.append
        )
        cell = _cell()
        engine.run_cells([cell])
        kinds = [e.kind for e in events]
        assert kinds == ["scheduled", "start", "done"]
        assert events[-1].wall > 0
        events.clear()
        engine.run_cells([cell])
        assert [e.kind for e in events] == ["scheduled", "hit"]

    def test_metrics_summary_mentions_counts(self):
        engine = ExperimentEngine(jobs=1)
        engine.run_cells([_cell()])
        text = engine.metrics.summary()
        assert "1 executed" in text and "cells scheduled" in text
        assert engine.metrics.as_dict()["executed"] == 1

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "workload,params",
        [
            ("bt", {"problem_class": "A", "iterations": 4}),
            ("sweep3d", {"nx": 8, "ny": 8, "nz": 16, "iterations": 3}),
        ],
    )
    def test_parallel_matches_serial(self, workload, params):
        cells = make_suite_cells(
            workload, 16,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=params,
        )
        serial = ExperimentEngine(jobs=1).run_cells(cells)
        parallel = ExperimentEngine(jobs=4).run_cells(cells)
        for s, p in zip(serial, parallel):
            assert s.fingerprint() == p.fingerprint()

    def test_run_suite_shape(self):
        engine = ExperimentEngine(jobs=1)
        suite = engine.run_suite(
            "uniform", 4, modes=(Mode.APP, Mode.CHAMELEON),
            workload_params={"iterations": 3},
        )
        assert set(suite) == {Mode.APP, Mode.CHAMELEON}
        assert suite[Mode.APP].trace is None
        assert suite[Mode.CHAMELEON].trace is not None

    def test_run_suite_groups_regroups_in_order(self):
        engine = ExperimentEngine(jobs=1)
        groups = [
            make_suite_cells("uniform", p, modes=(Mode.APP, Mode.CHAMELEON),
                             workload_params={"iterations": 3})
            for p in (2, 4)
        ]
        suites = engine.run_suite_groups(groups)
        assert [s[Mode.APP].nprocs for s in suites] == [2, 4]


class TestApiFacade:
    def test_run_smoke(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=RunCache(tmp_path))
        result = repro.run(
            "uniform", 4, "chameleon",
            workload_params={"iterations": 3}, engine=engine,
        )
        assert result.mode is Mode.CHAMELEON
        assert result.trace is not None
        # trace tools round-trip through the facade
        path = tmp_path / "t.st"
        result.trace.save(str(path))
        trace = repro.load_trace(str(path))
        replayed = repro.replay(trace)
        assert replayed.time > 0
        diff = repro.compare(str(path), trace)
        assert diff.similarity() == pytest.approx(1.0)

    def test_top_level_reexports(self):
        for name in ("run", "run_experiment", "load_trace", "replay",
                     "compare", "api", "EXPERIMENTS"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_run_experiment_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            repro.run_experiment("fig99")

    def test_run_experiment_uses_given_engine(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache=RunCache(tmp_path))
        rows, text = repro.run_experiment("table4", engine=engine)
        assert "Table IV" in text
        assert engine.metrics.scheduled >= 1
