"""Runner modes, overhead accounting, metric derivation, reporting."""

import pytest

from repro.harness import (
    Mode,
    breakdown,
    chameleon_config_for,
    default_p_list,
    overhead,
    overhead_fraction,
    render_table,
    run_mode,
    run_suite,
    state_space_summary,
)
from repro.harness.reporting import fmt, percent
from repro.workloads import make_workload

PARAMS = {"problem_class": "A", "iterations": 6, "detail": 2}


@pytest.fixture(scope="module")
def bt_suite():
    return run_suite(
        "bt",
        9,
        modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE, Mode.ACURDION),
        workload_params=PARAMS,
        call_frequency=2,
    )


class TestRunner:
    def test_all_modes_complete(self, bt_suite):
        assert set(bt_suite) == {
            Mode.APP,
            Mode.CHAMELEON,
            Mode.SCALATRACE,
            Mode.ACURDION,
        }
        for result in bt_suite.values():
            assert result.max_time > 0
            assert result.nprocs == 9

    def test_app_mode_has_no_tracer_stats(self, bt_suite):
        app = bt_suite[Mode.APP]
        assert app.tracer_stats == []
        assert app.trace is None

    def test_traced_modes_produce_traces(self, bt_suite):
        for mode in (Mode.CHAMELEON, Mode.SCALATRACE, Mode.ACURDION):
            trace = bt_suite[mode].trace
            assert trace is not None
            assert trace.expanded_count() > 0

    def test_overhead_nonnegative_and_ordered(self, bt_suite):
        app = bt_suite[Mode.APP]
        for mode in (Mode.CHAMELEON, Mode.SCALATRACE, Mode.ACURDION):
            assert overhead(bt_suite[mode], app) >= 0
        assert 0 <= overhead_fraction(bt_suite[Mode.CHAMELEON], app) < 1

    def test_deterministic_rerun(self):
        a = run_mode(make_workload("bt", **PARAMS), 4, Mode.CHAMELEON)
        b = run_mode(make_workload("bt", **PARAMS), 4, Mode.CHAMELEON)
        assert a.max_time == b.max_time
        assert a.total_time == b.total_time

    def test_config_for_applies_paper_k(self):
        wl = make_workload("bt", **PARAMS)
        cfg = chameleon_config_for(wl)
        assert cfg.k == 3
        pop = make_workload("pop", grid_points=64, block=8, iterations=2)
        cfg = chameleon_config_for(pop)
        assert cfg.signature_filter == "dedup"

    def test_default_p_list_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert default_p_list() == [16, 64]
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert default_p_list()[-1] == 1024


class TestMetrics:
    def test_breakdown_chameleon(self, bt_suite):
        b = breakdown(bt_suite[Mode.CHAMELEON])
        assert b.record > 0
        assert b.vote > 0
        assert b.clustering > 0
        assert b.total > 0

    def test_breakdown_scalatrace(self, bt_suite):
        b = breakdown(bt_suite[Mode.SCALATRACE])
        assert b.vote == 0 and b.clustering == 0
        assert b.intercompression > 0

    def test_breakdown_acurdion(self, bt_suite):
        b = breakdown(bt_suite[Mode.ACURDION])
        assert b.clustering > 0
        assert b.vote == 0

    def test_state_space_summary(self, bt_suite):
        summary = state_space_summary(bt_suite[Mode.CHAMELEON])
        assert set(summary) == set(range(9))
        for data in summary.values():
            assert data["calls"] > 0
            assert data["avg"] >= 0


class TestReporting:
    def test_render_basic(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, 0.0001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_fmt_floats(self):
        assert fmt(0.0) == "0"
        assert "e" in fmt(1e-9)
        assert fmt(3.14159) == "3.142"
        assert fmt("x") == "x"

    def test_percent(self):
        assert percent(0.9775) == "97.75%"

    def test_render_empty_rows(self):
        text = render_table(["h1", "h2"], [])
        assert "h1" in text
