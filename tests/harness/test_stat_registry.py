"""RunResult.stat()/registry(): the unified metric path and its shims."""

import pytest

from repro.harness import Mode, breakdown, run_mode
from repro.obs import Recorder
from repro.workloads import make_workload

PARAMS = {"iterations": 4}


@pytest.fixture(scope="module")
def chameleon():
    return run_mode(make_workload("synthetic", **PARAMS), 4, Mode.CHAMELEON)


@pytest.fixture(scope="module")
def scalatrace():
    return run_mode(make_workload("synthetic", **PARAMS), 4, Mode.SCALATRACE)


class TestStat:
    def test_matches_raw_dataclass_sums(self, chameleon):
        expected = sum(s.vote_time for s in chameleon.chameleon_stats)
        assert chameleon.stat("vote_time", source="chameleon") == expected
        expected = sum(s.record_time for s in chameleon.tracer_stats)
        assert chameleon.stat("record_time", source="tracer") == expected

    def test_qualified_names(self, chameleon):
        assert chameleon.stat("chameleon/vote_time") == chameleon.stat(
            "vote_time", source="chameleon"
        )

    def test_auto_resolution_order(self, chameleon):
        # record_time only exists on the tracer side, vote_time only on
        # the chameleon side; auto finds both without a source hint.
        assert chameleon.stat("record_time") == chameleon.stat(
            "record_time", source="tracer"
        )
        assert chameleon.stat("vote_time") == chameleon.stat(
            "vote_time", source="chameleon"
        )

    def test_missing_is_zero(self, chameleon):
        assert chameleon.stat("no_such_metric") == 0.0
        assert chameleon.stat("vote_time", source="tracer") == 0.0

    def test_rank_filter(self, chameleon):
        per_rank = [
            chameleon.stat("vote_time", source="chameleon", rank=r)
            for r in range(chameleon.nprocs)
        ]
        assert sum(per_rank) == pytest.approx(
            chameleon.stat("vote_time", source="chameleon")
        )

    def test_phase_filter(self, chameleon):
        reg = chameleon.registry()
        assert reg.has("chameleon/state_markers")
        total = chameleon.stat("chameleon/state_markers")
        phases = {
            key[2] for key in reg.labels("chameleon/state_markers")
            if key[2] is not None
        }
        assert "all-tracing" in phases
        by_phase = [
            chameleon.stat("chameleon/state_markers", phase=p)
            for p in phases
        ]
        assert sum(by_phase) == total > 0


class TestRegistry:
    def test_covers_all_sources(self, chameleon, scalatrace):
        names = chameleon.registry().names()
        assert any(n.startswith("tracer/") for n in names)
        assert any(n.startswith("chameleon/") for n in names)
        assert all(
            n.startswith("tracer/") for n in scalatrace.registry().names()
        )

    def test_acurdion_extra(self):
        result = run_mode(
            make_workload("synthetic", **PARAMS), 4, Mode.ACURDION
        )
        assert result.registry().has("acurdion/clustering_time")
        assert result.stat("clustering_time", source="acurdion") >= 0.0

    def test_merges_live_obs_metrics(self):
        result = run_mode(
            make_workload("synthetic", **PARAMS), 4, Mode.CHAMELEON,
            instrument=Recorder(),
        )
        reg = result.registry()
        assert reg.value("coll/calls") > 0  # live metric, via obs
        assert reg.has("chameleon/vote_time")  # stats-derived


class TestRetiredShims:
    def test_sum_stat_removed(self, chameleon):
        with pytest.raises(AttributeError, match=r"source='tracer'"):
            chameleon.sum_stat

    def test_sum_cstat_removed(self, chameleon):
        with pytest.raises(AttributeError, match=r"source='chameleon'"):
            chameleon.sum_cstat


class TestBreakdownFix:
    def test_chameleon_record_without_tracer_stats(self, chameleon):
        """Record time must survive the loss of the tracer_stats list.

        The old implementation gated on ``if result.tracer_stats`` and
        reported record=0.0 whenever that list was empty even though the
        Chameleon stats (and the registry) still knew the recording cost.
        """
        import dataclasses

        assert breakdown(chameleon).record > 0.0
        # registry still derives record time when the run was instrumented
        recorded = run_mode(
            make_workload("synthetic", **PARAMS), 4, Mode.CHAMELEON,
            instrument=Recorder(),
        )
        stripped = dataclasses.replace(recorded, tracer_stats=[])
        assert breakdown(stripped).record > 0.0
        assert stripped.chameleon_stats  # chameleon stats were present

    def test_breakdown_totals_consistent(self, chameleon):
        bd = breakdown(chameleon)
        assert bd.total == pytest.approx(
            bd.record + bd.signature + bd.vote + bd.clustering
            + bd.intercompression
        )
