"""Result export (JSON/CSV) and ASCII bar charts."""

import json

import pytest

from repro.harness import ascii_bars, rows_to_csv, rows_to_json, save_rows

ROWS = [
    {"bench": "bt", "P": 16, "overhead": 0.01, "nested": {"a": 1}},
    {"bench": "lu", "P": 64, "overhead": 0.07, "extra": (1, 2)},
]


class TestExport:
    def test_json_roundtrip(self):
        data = json.loads(rows_to_json(ROWS))
        assert data[0]["bench"] == "bt"
        assert data[0]["nested"] == {"a": 1}
        assert data[1]["extra"] == [1, 2]

    def test_csv_union_header(self):
        text = rows_to_csv(ROWS)
        header = text.splitlines()[0]
        assert header == "P,bench,extra,nested,overhead"
        assert len(text.splitlines()) == 3

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_save_json_and_csv(self, tmp_path):
        j = save_rows(ROWS, tmp_path / "out.json")
        c = save_rows(ROWS, tmp_path / "out.csv")
        assert json.loads(j.read_text())[1]["P"] == 64
        assert "bt" in c.read_text()

    def test_save_rejects_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError):
            save_rows(ROWS, tmp_path / "out.xml")

    def test_non_serializable_coerced(self):
        class Odd:
            def __str__(self):
                return "odd!"

        data = json.loads(rows_to_json([{"x": Odd()}]))
        assert data[0]["x"] == "odd!"


class TestAsciiBars:
    def test_linear(self):
        text = ascii_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_log_scale_compresses_magnitudes(self):
        text = ascii_bars(
            [("small", 0.001), ("big", 1.0)], width=40, log_scale=True
        )
        lines = text.splitlines()
        assert 1 <= lines[0].count("#") < lines[1].count("#")

    def test_zero_values_get_no_bar(self):
        text = ascii_bars([("none", 0.0), ("some", 1.0)])
        assert "#" not in text.splitlines()[0]

    def test_title_and_empty(self):
        assert ascii_bars([], title="T").startswith("T")
        assert "(no data)" in ascii_bars([])

    def test_labels_aligned(self):
        text = ascii_bars([("x", 1.0), ("longer", 1.0)])
        bars = [line.index("|") for line in text.splitlines()]
        assert len(set(bars)) == 1


class TestCliExport:
    @pytest.mark.slow
    def test_experiment_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t3.json"
        assert main(["experiment", "table3", "--export", str(out)]) == 0
        rows = json.loads(out.read_text())
        assert rows and "acurdion" in rows[0]
