"""Unit tests for the scaling-benchmark harness (fast: tiny P only)."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.harness.bench import (
    SCHEMA_ID,
    SHARD_TIERS,
    WALL_FLOOR_S,
    compare,
    load_bench,
    run_scaling_bench,
    save_bench,
)
from repro.obs.schema import validate
from repro.simmpi import SimConfig

REPO = pathlib.Path(__file__).resolve().parents[2]
SCHEMA = json.loads(
    (REPO / "schemas" / "bench_scaling.schema.json").read_text(encoding="utf-8")
)


def _doc(*cells: tuple) -> dict:
    """Build a v4 document from (kernel, nprocs, wall[, shards]) cells."""
    return {
        "schema": SCHEMA_ID,
        "ps": sorted({c[1] for c in cells}),
        "kernels": sorted({c[0] for c in cells}),
        "config": {"matching": "indexed", "collectives": "fast",
                   "p2p": "fast", "shards": 1, "max_steps": None},
        "results": [
            {
                "kernel": c[0],
                "nprocs": c[1],
                "shards": c[3] if len(c) > 3 else 1,
                "wall_s": c[2],
                "peak_rss_kb": 1024,
                "engine_steps": 10,
                "messages_matched": 100,
                "matched_per_s": 1000,
                "collectives_fast": 12,
                "p2p_fast": 3,
                "virtual_makespan_s": 1e-4,
            }
            for c in cells
        ],
    }


class TestCompareGate:
    def test_within_tolerance_passes(self):
        base = _doc(("allreduce_barrier", 256, 1.0))
        cur = _doc(("allreduce_barrier", 256, 1.15))
        assert compare(cur, base, tolerance=0.2) == []

    def test_regression_beyond_tolerance_fails(self):
        base = _doc(("allreduce_barrier", 256, 1.0))
        cur = _doc(("allreduce_barrier", 256, 1.5))
        problems = compare(cur, base, tolerance=0.2)
        assert len(problems) == 1
        assert "allreduce_barrier @ P=256" in problems[0]

    def test_speedup_always_passes(self):
        base = _doc(("halo_exchange", 1024, 2.0))
        cur = _doc(("halo_exchange", 1024, 0.1))
        assert compare(cur, base, tolerance=0.2) == []

    def test_missing_cell_fails(self):
        base = _doc(("halo_exchange", 4096, 1.0))
        cur = _doc(("halo_exchange", 256, 1.0))
        problems = compare(cur, base, tolerance=0.2)
        assert problems and "missing" in problems[0]

    def test_extra_current_cells_ignored(self):
        base = _doc(("halo_exchange", 256, 1.0))
        cur = _doc(("halo_exchange", 256, 1.0), ("halo_exchange", 512, 99.0))
        assert compare(cur, base, tolerance=0.2) == []

    def test_noise_floor_absorbs_micro_baselines(self):
        # A 1 ms baseline must not fail on a 30 ms run: both are timer
        # noise, and the gate measures against the floor instead.
        base = _doc(("allreduce_barrier", 4, 0.001))
        cur = _doc(("allreduce_barrier", 4, WALL_FLOOR_S))
        assert compare(cur, base, tolerance=0.2) == []

    def test_noise_floor_clamps_both_sides(self):
        # A zero-wall cell (clock quantization) passes against any
        # sub-floor baseline, and a sub-floor current run passes against
        # a zero-wall baseline: the ratio is floor/floor, not x/0.
        base = _doc(("allreduce_barrier", 4, 0.0))
        cur = _doc(("allreduce_barrier", 4, 0.04))
        assert compare(cur, base, tolerance=0.2) == []
        assert compare(base, cur, tolerance=0.2) == []

    def test_cells_keyed_by_shards(self):
        # A sharded baseline cell is distinct from the single-process one
        # at the same (kernel, P): it must be present and is gated on its
        # own wall time.
        base = _doc(("allreduce_barrier", 256, 1.0),
                    ("allreduce_barrier", 256, 0.5, 4))
        cur = _doc(("allreduce_barrier", 256, 1.0))
        problems = compare(cur, base, tolerance=0.2)
        assert len(problems) == 1
        assert "shards=4" in problems[0] and "missing" in problems[0]
        cur = _doc(("allreduce_barrier", 256, 1.0),
                   ("allreduce_barrier", 256, 2.0, 4))
        problems = compare(cur, base, tolerance=0.2)
        assert len(problems) == 1 and "shards=4" in problems[0]

    def test_legacy_shardless_baseline_records_still_compare(self):
        base = _doc(("allreduce_barrier", 256, 1.0))
        for r in base["results"]:
            del r["shards"]  # pre-v3 record shape
        cur = _doc(("allreduce_barrier", 256, 1.0))
        assert compare(cur, base, tolerance=0.2) == []


class TestBenchDocument:
    def test_tiny_matrix_validates_against_schema(self):
        doc = run_scaling_bench(ps=(4, 8))
        assert validate(doc, SCHEMA) == []
        assert len(doc["results"]) == 4  # 2 kernels x 2 Ps, no shard tiers
        for r in doc["results"]:
            assert r["engine_steps"] > 0
            assert r["shards"] == 1
            if r["kernel"] == "halo_exchange":
                # P2P traffic still goes through the mailbox under the
                # collective fast path.
                assert r["messages_matched"] > 0
            else:
                # allreduce_barrier is pure collectives: the fast path
                # replays them without mailbox matches.
                assert r["messages_matched"] == 0
                assert r["collectives_fast"] == 3 * r["nprocs"]

    def test_simulated_mode_still_matches_messages(self):
        doc = run_scaling_bench(ps=(4,), kernels=("allreduce_barrier",),
                                sim=SimConfig(collectives="simulated"))
        assert doc["config"]["collectives"] == "simulated"
        (r,) = doc["results"]
        assert r["messages_matched"] > 0
        assert r["collectives_fast"] == 0

    def test_retired_collectives_kwarg_raises(self):
        with pytest.raises(TypeError, match="collectives="):
            run_scaling_bench(ps=(4,), kernels=("allreduce_barrier",),
                              collectives="simulated")

    def test_p2p_simulated_mode_disables_fast_path(self):
        doc = run_scaling_bench(ps=(4,), kernels=("halo_exchange",),
                                sim=SimConfig(p2p="simulated"))
        assert doc["config"]["p2p"] == "simulated"
        (r,) = doc["results"]
        assert r["p2p_fast"] == 0
        assert r["messages_matched"] > 0

    def test_p2p_fast_path_resolves_the_declared_halo(self):
        doc = run_scaling_bench(ps=(4,), kernels=("halo_exchange",))
        (r,) = doc["results"]
        # every rank's declared halo resolves through the gate; only the
        # wildcard drain round still goes through the mailbox
        assert r["p2p_fast"] == 4
        assert r["messages_matched"] == 4

    def test_sharded_point_records_shards(self):
        doc = run_scaling_bench(ps=(8,), kernels=("allreduce_barrier",),
                                sim=SimConfig(shards=2))
        (r,) = doc["results"]
        assert r["shards"] == 2
        assert "shard_fallback" not in r

    def test_halo_kernel_is_shard_eligible(self):
        # The halo kernel's wildcard drain round used to force the
        # single-process rerun; the quiescent-drain protocol keeps it
        # sharded now (single candidate sender per receive).
        doc = run_scaling_bench(ps=(8,), kernels=("halo_exchange",),
                                sim=SimConfig(shards=2))
        (r,) = doc["results"]
        assert r["shards"] == 2
        assert "shard_fallback" not in r

    def test_committed_baseline_is_valid_and_covers_the_ladder(self):
        doc = load_bench(str(REPO / "benchmarks" / "BENCH_scaling.json"))
        assert validate(doc, SCHEMA) == []
        cells = {(r["kernel"], r["nprocs"], r["shards"])
                 for r in doc["results"]}
        for p in (256, 1024, 4096, 16384):
            assert ("allreduce_barrier", p, 1) in cells
            assert ("halo_exchange", p, 1) in cells
        for kernel, p, shards in SHARD_TIERS:
            assert (kernel, p, shards) in cells

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown bench kernel"):
            run_scaling_bench(ps=(4,), kernels=("nope",))

    def test_save_load_roundtrip(self, tmp_path):
        doc = _doc(("halo_exchange", 4, 0.01))
        path = tmp_path / "b.json"
        save_bench(doc, str(path))
        assert load_bench(str(path)) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": "other/v9"}), encoding="utf-8")
        with pytest.raises(ValueError, match="expected schema"):
            load_bench(str(path))


class TestBenchCli:
    def test_bench_writes_document_and_self_compares(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scaling.json"
        assert main(
            ["bench", "--p", "4", "--kernel", "allreduce_barrier",
             "-o", str(out)]
        ) == 0
        doc = load_bench(str(out))
        assert validate(doc, SCHEMA) == []
        # Self-comparison is within tolerance by construction (floor).
        assert main(
            ["bench", "--p", "4", "--kernel", "allreduce_barrier",
             "-o", "", "--baseline", str(out)]
        ) == 0
        assert "within" in capsys.readouterr().out

    def test_bench_config_flag(self, tmp_path):
        out = tmp_path / "b.json"
        assert main(
            ["bench", "--p", "4", "--kernel", "allreduce_barrier",
             "-o", str(out), "--config", "collectives=simulated",
             "--config", "shards=2"]
        ) == 0
        doc = load_bench(str(out))
        assert doc["config"]["collectives"] == "simulated"
        assert doc["config"]["shards"] == 2
        (r,) = doc["results"]
        assert r["shards"] == 2

    def test_bench_rejects_bad_config(self):
        with pytest.raises(SystemExit, match="unknown --config key"):
            main(["bench", "--p", "4", "--config", "warp=9"])
        with pytest.raises(SystemExit, match="KEY=VAL"):
            main(["bench", "--p", "4", "--config", "shards"])

    def test_bench_fails_on_regression(self, tmp_path, capsys):
        # Baseline with an impossible wall time: any real run regresses.
        base = _doc(("allreduce_barrier", 4, 0.0))
        base["results"][0]["wall_s"] = 0.0
        path = tmp_path / "base.json"
        save_bench(base, str(path))
        # floor * 1.0 tolerance-0 budget is beaten only by sub-floor runs;
        # force failure with a negative-headroom tolerance.
        code = main(
            ["bench", "--p", "4", "--kernel", "allreduce_barrier",
             "-o", "", "--baseline", str(path), "--tolerance", "-1.0"]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().err

    def test_config_show_prints_resolved_config(self, capsys):
        assert main(
            ["config", "show", "--config", "p2p=simulated",
             "--config", "network=slow"]
        ) == 0
        out = capsys.readouterr().out
        assert "network       slow" in out
        assert "p2p           simulated" in out
        assert "matching      indexed" in out
        assert "cache digest  " in out

    def test_config_show_rejects_bad_config(self):
        with pytest.raises(SystemExit, match="unknown --config key"):
            main(["config", "show", "--config", "warp=9"])
