"""The streamed-vs-batch bit-identity oracle, without HTTP.

A job fed chunk-by-chunk through the :class:`EventBuffer` must produce
the *exact* result of the batch ``stream`` workload over the same steps:
identical fingerprint (covering clocks, leads, stats, trace bytes) no
matter how the stream is split.  This is the correctness claim the
serving layer is built on.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.harness.runner import Mode, chameleon_config_for, run_mode
from repro.serve.ingest import (
    EOF,
    EventBuffer,
    LiveStreamWorkload,
    StreamAborted,
)
from repro.workloads.stream import (
    StreamWorkload,
    canonical_steps_json,
    default_steps,
)

NPROCS = 8


def _batch(steps, mode=Mode.CHAMELEON):
    cfg = chameleon_config_for(StreamWorkload)
    return run_mode(
        StreamWorkload(canonical_steps_json(steps)), NPROCS, mode, config=cfg
    )


def _streamed(steps, chunks, mode=Mode.CHAMELEON, publish=None):
    """Run the live workload, feeding ``chunks`` from a producer thread."""
    cfg = chameleon_config_for(StreamWorkload)
    buf = EventBuffer()

    def produce():
        for chunk in chunks:
            buf.extend(list(chunk))
        buf.close()

    producer = threading.Thread(target=produce)
    producer.start()
    try:
        return run_mode(
            LiveStreamWorkload(buf, publish=publish), NPROCS, mode, config=cfg
        )
    finally:
        producer.join()


def _random_chunks(steps, rng):
    steps = list(steps)
    chunks = []
    while steps:
        n = rng.randint(1, len(steps))
        chunks.append(steps[:n])
        steps = steps[n:]
    return chunks


class TestBitIdentity:
    def test_single_chunk_matches_batch(self):
        steps = default_steps()
        assert _streamed(steps, [steps]).fingerprint() == \
            _batch(steps).fingerprint()

    def test_one_step_per_chunk_matches_batch(self):
        steps = default_steps()
        chunks = [[s] for s in steps]
        assert _streamed(steps, chunks).fingerprint() == \
            _batch(steps).fingerprint()

    @pytest.mark.parametrize("mode", [Mode.APP, Mode.SCALATRACE,
                                      Mode.CHAMELEON, Mode.ACURDION])
    def test_all_modes_identical(self, mode):
        steps = default_steps()
        chunks = [steps[:2], steps[2:5], steps[5:]]
        live = _streamed(steps, chunks, mode=mode)
        batch = _batch(steps, mode=mode)
        assert live.fingerprint() == batch.fingerprint()
        if batch.trace is not None:
            assert live.trace.serialize() == batch.trace.serialize()

    def test_seeded_fuzz_random_chunk_splits(self):
        steps = default_steps()
        expected = _batch(steps)
        expected_fp = expected.fingerprint()
        expected_trace = expected.trace.serialize()
        rng = random.Random(0xC11A)
        for _ in range(6):
            live = _streamed(steps, _random_chunks(steps, rng))
            assert live.fingerprint() == expected_fp
            assert live.trace.serialize() == expected_trace
            assert live.lead_ranks == expected.lead_ranks

    def test_progress_published_incrementally(self):
        steps = default_steps()
        seen: list[int] = []

        def publish(step, decision, tracer):
            seen.append(step)

        _streamed(steps, [[s] for s in steps], publish=publish)
        assert seen == list(range(len(steps)))


class TestEventBuffer:
    def test_get_blocks_until_extend(self):
        buf = EventBuffer()
        got = []

        def consume():
            got.append(buf.get(0))

        t = threading.Thread(target=consume)
        t.start()
        buf.extend([{"ops": []}])
        t.join(5)
        assert got == [{"ops": []}]

    def test_eof_after_close(self):
        buf = EventBuffer()
        buf.extend([{"ops": []}])
        buf.close()
        assert buf.get(0) == {"ops": []}
        assert buf.get(1) is EOF

    def test_extend_after_close_raises(self):
        buf = EventBuffer()
        buf.close()
        with pytest.raises(StreamAborted):
            buf.extend([{"ops": []}])

    def test_abort_wakes_consumer(self):
        buf = EventBuffer()
        err = []

        def consume():
            try:
                buf.get(0)
            except StreamAborted as exc:
                err.append(str(exc))

        t = threading.Thread(target=consume)
        t.start()
        buf.abort("gone")
        t.join(5)
        assert err == ["gone"]

    def test_idle_timeout_raises(self):
        buf = EventBuffer(idle_timeout=0.05)
        with pytest.raises(StreamAborted, match="idle-timeout"):
            buf.get(0)
