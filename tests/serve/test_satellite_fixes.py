"""Regression tests for the harness/cache correctness fixes that ride
along with the serving PR: unique spill naming + in-flight detection,
the dead-worker kill guard, the bench throughput floor, the streamed-job
idle-timeout policy knob, worker-exception pickling, and contained cell
errors in ``run_cells``.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.harness.bench import WALL_FLOOR_S, matched_per_s
from repro.harness.cache import RunCache, _spill_path, _spill_writer_alive
from repro.harness.engine import ExperimentEngine, make_cell
from repro.harness.runner import Mode
from repro.resilience import QuarantineError, RetryPolicy
from repro.resilience.policy import (
    DEFAULT_JOB_IDLE_TIMEOUT,
    ENV_JOB_IDLE_TIMEOUT,
)
from repro.simmpi.errors import TaskFailedError
from repro.workloads.stream import canonical_steps_json, normalize_steps


class TestSpillNaming:
    def test_spill_paths_are_unique(self, tmp_path):
        target = tmp_path / "entry.pkl"
        names = {_spill_path(target).name for _ in range(50)}
        assert len(names) == 50
        assert all(str(os.getpid()) in n for n in names)

    def test_concurrent_put_same_digest(self, tmp_path):
        """Two racing put()s of one digest never collide on a spill."""
        cache = RunCache(root=tmp_path / "cache")
        digest = "ab" * 32
        cache.put(digest, {"v": 1})
        cache.put(digest, {"v": 2})  # same name, fresh spill each time
        assert cache.get(digest) == {"v": 2}
        assert cache.verify().clean

    def test_verify_reports_live_writer_as_in_flight(self, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        digest = "cd" * 32
        cache.put(digest, {"v": 1})
        path = cache.path_for(digest)
        spill = _spill_path(path)  # carries our own (live) pid
        spill.write_bytes(b"partial")
        report = cache.verify()
        assert report.in_flight == [str(spill)]
        assert report.orphaned == []
        assert spill.exists()  # never removed, even with fix=True
        cache.verify(fix=True)
        assert spill.exists()

    def test_verify_reports_dead_writer_as_orphan(self, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        digest = "ef" * 32
        cache.put(digest, {"v": 1})
        path = cache.path_for(digest)
        # pid 2**22-ish beyond pid_max on default systems; certainly dead
        dead = path.parent / f"{path.name}.99999999-0.tmp"
        dead.write_bytes(b"partial")
        report = cache.verify()
        assert report.orphaned == [str(dead)]
        assert report.in_flight == []
        cache.verify(fix=True)
        assert not dead.exists()

    def test_legacy_tmp_names_stay_orphans(self, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        cache.put("aa" * 32, {"v": 1})
        legacy = cache.path_for("aa" * 32).parent / "spill.tmp"
        legacy.write_bytes(b"x")
        report = cache.verify()
        assert report.orphaned == [str(legacy)]

    def test_writer_alive_probe(self):
        assert _spill_writer_alive(
            __import__("pathlib").Path(f"e.pkl.{os.getpid()}-0.tmp")
        )
        assert not _spill_writer_alive(
            __import__("pathlib").Path("e.pkl.99999999-0.tmp")
        )
        assert not _spill_writer_alive(
            __import__("pathlib").Path("e.pkl.tmp")
        )


class TestKillGuard:
    def test_kill_pool_workers_skips_dead_handles(self):
        """None sentinels and reaped handles must not abort the sweep."""
        killed = []

        class DeadProc:
            def kill(self):
                raise ValueError("process object is closed")

        class LiveProc:
            def kill(self):
                killed.append(self)

        class FakePool:
            _processes = {1: None, 2: DeadProc(), 3: LiveProc()}

        ExperimentEngine._kill_pool_workers(FakePool())
        assert len(killed) == 1

    def test_kill_pool_workers_handles_missing_map(self):
        class Bare:
            _processes = None

        ExperimentEngine._kill_pool_workers(Bare())


class TestBenchFloor:
    def test_matched_per_s_clamps_zero_wall(self):
        assert matched_per_s(100, 0.0) == round(100 / WALL_FLOOR_S)

    def test_matched_per_s_above_floor_unchanged(self):
        assert matched_per_s(100, 2.0) == 50


class TestIdleTimeoutPolicy:
    def test_default(self):
        assert RetryPolicy().job_idle_timeout == DEFAULT_JOB_IDLE_TIMEOUT

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(job_idle_timeout=0)

    def test_none_allowed(self):
        assert RetryPolicy(job_idle_timeout=None).job_idle_timeout is None

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOB_IDLE_TIMEOUT, "12.5")
        assert RetryPolicy.from_env().job_idle_timeout == 12.5
        monkeypatch.setenv(ENV_JOB_IDLE_TIMEOUT, "0")
        assert RetryPolicy.from_env().job_idle_timeout is None
        monkeypatch.setenv(ENV_JOB_IDLE_TIMEOUT, "junk")
        assert RetryPolicy.from_env().job_idle_timeout == \
            DEFAULT_JOB_IDLE_TIMEOUT


class TestWorkerExceptionPickling:
    def test_task_failed_error_roundtrips(self):
        exc = TaskFailedError(3, ValueError("bad root"))
        back = pickle.loads(pickle.dumps(exc))
        assert isinstance(back, TaskFailedError)
        assert back.rank == 3
        assert str(back) == str(exc)


def _cell(steps, nprocs=4, mode=Mode.APP):
    return make_cell(
        "stream", nprocs, mode,
        workload_params={
            "steps_json": canonical_steps_json(normalize_steps(steps))
        },
    )


GOOD = [{"ops": [{"op": "barrier"}]}]
POISON = [{"ops": [{"op": "bcast", "root": 99}]}]


class TestContainErrors:
    def test_inline_contained(self):
        engine = ExperimentEngine(jobs=0, cache=None)
        cells = [_cell(GOOD), _cell(POISON), _cell(GOOD, nprocs=2)]
        with pytest.raises(QuarantineError) as err:
            engine.run_cells(cells, contain_errors=True)
        assert [r is not None for r in err.value.results] == \
            [True, False, True]
        q = err.value.quarantined[0]
        assert q.reason.startswith("cell-error:")
        assert q.attempts == 1

    def test_pool_contained(self):
        engine = ExperimentEngine(
            jobs=2, cache=None,
            policy=RetryPolicy(max_attempts=2, cell_deadline=None),
        )
        cells = [_cell(GOOD), _cell(POISON), _cell(GOOD, nprocs=2)]
        with pytest.raises(QuarantineError) as err:
            engine.run_cells(cells, contain_errors=True)
        assert [r is not None for r in err.value.results] == \
            [True, False, True]
        q = err.value.quarantined[0]
        assert q.reason.startswith("cell-error:")
        assert "root 99" in q.reason
        assert q.attempts == 1  # deterministic errors are not retried

    def test_default_still_raises(self):
        engine = ExperimentEngine(jobs=0, cache=None)
        with pytest.raises(TaskFailedError):
            engine.run_cells([_cell(POISON)])
