"""End-to-end tests of the HTTP ingestion service.

A real :class:`ServerThread` on an ephemeral port, talked to with the
blocking :class:`ServeClient` — the same pair the CI smoke job uses.
"""

from __future__ import annotations

import random

import pytest

from repro.api import stream_run
from repro.harness.cache import RunCache
from repro.harness.engine import ExperimentEngine
from repro.resilience import RetryPolicy
from repro.serve.app import ServerThread
from repro.serve.client import ServeClient, ServeHTTPError
from repro.serve.jobs import ServeConfig
from repro.workloads.stream import default_steps

NPROCS = 8


@pytest.fixture()
def server(tmp_path):
    engine = ExperimentEngine(
        jobs=2, cache=RunCache(tmp_path / "cache"),
        policy=RetryPolicy(max_attempts=1, cell_deadline=None),
    )
    srv = ServerThread(
        engine, ServeConfig(port=0, batch_window=0.01, max_stream_jobs=16)
    )
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServeClient(port=server.port)


def _oracle(steps, engine=None, **kw):
    return stream_run(
        steps, nprocs=NPROCS, mode="chameleon",
        engine=engine or ExperimentEngine(jobs=0, cache=None), **kw
    )


class TestStreamedJobs:
    def test_streamed_equals_batch_fuzz(self, client):
        """Seeded fuzz: arbitrary chunk splits are bit-identical to batch."""
        steps = default_steps()
        expected = _oracle(steps)
        expected_trace = expected.trace.serialize()
        rng = random.Random(0x5E12)
        for _ in range(3):
            job = client.create_job(nprocs=NPROCS, mode="chameleon")["job"]
            remaining = list(steps)
            while remaining:
                n = rng.randint(1, len(remaining))
                client.send_events(job, remaining[:n])
                remaining = remaining[n:]
            client.close_job(job)
            doc = client.wait(job)
            assert doc["state"] == "complete"
            assert doc["result"]["fingerprint"] == expected.fingerprint()
            assert sorted(doc["result"]["lead_ranks"]) == \
                sorted(expected.lead_ranks)
            assert client.trace(job) == expected_trace
            clusters = client.clusters(job)
            assert sorted(clusters["leads"]) == sorted(expected.lead_ranks)

    def test_progress_advances_before_close(self, client):
        """Clustering is incremental: state advances while still open.

        Progress may trail the newest buffered step by one (a sibling
        rank can park the sim thread on the *next* step before rank 0's
        publish runs), so with 3 steps sent we require >= 2 consumed.
        """
        import time

        steps = default_steps()
        job = client.create_job(nprocs=NPROCS, mode="chameleon")["job"]
        client.send_events(job, steps[:3])
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            doc = client.status(job)
            if doc["steps_consumed"] >= 2:
                break
            time.sleep(0.02)
        assert doc["state"] == "open"
        assert doc["steps_consumed"] >= 2
        assert doc["live"]["clusters"]["num_clusters"] >= 1
        client.send_events(job, steps[3:])
        client.close_job(job)
        assert client.wait(job)["state"] == "complete"

    def test_second_stream_is_cache_hit(self, client):
        steps = default_steps()
        for expect in ("stored", "hit"):
            job = client.create_job(nprocs=NPROCS, mode="chameleon")["job"]
            client.send_events(job, steps)
            client.close_job(job)
            doc = client.wait(job)
            assert doc["state"] == "complete"
            assert doc["cache"] == expect

    def test_streamed_cache_serves_batch_run(self, server, client):
        """A streamed job pre-warms the cache for the equivalent batch run."""
        steps = default_steps()
        job = client.create_job(nprocs=NPROCS, mode="chameleon")["job"]
        client.send_events(job, steps)
        client.close_job(job)
        doc = client.wait(job)
        assert doc["cache"] == "stored"
        engine = server.registry.engine
        before = engine.cache.stats.hits
        batch = _oracle(steps, engine=engine)
        assert engine.cache.stats.hits == before + 1
        assert batch.fingerprint() == doc["result"]["fingerprint"]

    def test_poisoned_stream_fails_with_quarantine(self, client):
        """Runtime-invalid events (bad bcast root) fail the one job."""
        job = client.create_job(nprocs=4, mode="chameleon")["job"]
        client.send_events(job, [{"ops": [{"op": "bcast", "root": 99}]}])
        client.close_job(job)
        doc = client.wait(job)
        assert doc["state"] == "failed"
        assert "quarantine" in doc
        assert "root 99" in doc["quarantine"]["reason"]

    def test_cancel_open_job(self, client):
        job = client.create_job(nprocs=4)["job"]
        client.cancel(job)
        assert client.wait(job)["state"] == "cancelled"


class TestConcurrentTenants:
    def test_nine_tenants_one_poisoned(self, client):
        """>= 8 concurrent jobs multiplex over one engine; the poisoned
        one is quarantined without blocking its siblings."""
        steps = default_steps()
        good = []
        for i in range(8):
            # distinct seconds -> distinct digests -> real multiplexing
            my = [dict(s, ops=[dict(op) for op in s["ops"]]) for s in steps]
            my[0]["ops"].insert(0, {"op": "compute",
                                    "seconds": 0.0001 * (i + 1)})
            doc = client.create_job(nprocs=4, mode="chameleon", steps=my,
                                    label=f"tenant-{i}")
            good.append(doc["job"])
        poisoned = client.create_job(
            nprocs=4, steps=[{"ops": [{"op": "reduce", "root": 7}]}],
            label="poisoned",
        )["job"]
        done = [client.wait(j, timeout=180) for j in good]
        bad = client.wait(poisoned, timeout=180)
        assert [d["state"] for d in done] == ["complete"] * 8
        assert bad["state"] == "failed"
        assert "root 7" in bad["quarantine"]["reason"]
        states = client.stats()["by_state"]
        assert states.get("complete", 0) >= 8
        assert states.get("failed", 0) == 1

    def test_duplicate_uploads_dedup(self, client):
        steps = default_steps()
        a = client.create_job(nprocs=NPROCS, steps=steps)["job"]
        doc_a = client.wait(a)
        b = client.create_job(nprocs=NPROCS, steps=steps)["job"]
        doc_b = client.wait(b)
        assert doc_a["state"] == doc_b["state"] == "complete"
        assert doc_a["digest"] == doc_b["digest"]
        assert doc_b["cache"] == "hit"
        assert doc_a["result"]["fingerprint"] == doc_b["result"]["fingerprint"]


class TestErrors:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServeHTTPError) as err:
            client.status("nope")
        assert err.value.status == 404

    def test_bad_event_line_400(self, client):
        job = client.create_job(nprocs=4)["job"]
        with pytest.raises(ServeHTTPError) as err:
            client.send_events(job, [{"ops": [{"op": "gatherv"}]}])
        assert err.value.status == 400

    def test_events_after_close_409(self, client):
        job = client.create_job(nprocs=4)["job"]
        client.send_events(job, [{"ops": [{"op": "barrier"}]}])
        client.close_job(job)
        with pytest.raises(ServeHTTPError) as err:
            client.send_events(job, [{"ops": [{"op": "barrier"}]}])
        assert err.value.status == 409
        client.wait(job)

    def test_sharded_job_rejected_400(self, client):
        with pytest.raises(ServeHTTPError) as err:
            client.create_job(nprocs=4, config={"shards": 2})
        assert err.value.status == 400

    def test_bad_spec_field_400(self, client):
        with pytest.raises(ServeHTTPError) as err:
            client.create_job(nprocs=4, bogus=True)
        assert err.value.status == 400

    def test_trace_before_complete_409(self, client):
        job = client.create_job(nprocs=4)["job"]
        with pytest.raises(ServeHTTPError) as err:
            client.trace(job)
        assert err.value.status == 409
        client.cancel(job)

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeHTTPError) as err:
            client._json("GET", "/v2/anything")
        assert err.value.status == 404

    def test_health_and_stats(self, client):
        assert client.health() == {"ok": True}
        stats = client.stats()
        assert "jobs" in stats and "engine" in stats


class TestIdleTimeout:
    def test_quiet_stream_fails_as_idle(self, tmp_path):
        engine = ExperimentEngine(jobs=0, cache=None)
        srv = ServerThread(
            engine, ServeConfig(port=0, idle_timeout=0.2)
        ).start()
        try:
            client = ServeClient(port=srv.port)
            job = client.create_job(nprocs=4)["job"]
            client.send_events(job, [{"ops": [{"op": "barrier"}]}])
            doc = client.wait(job, timeout=30)
            assert doc["state"] == "failed"
            assert "idle-timeout" in doc["quarantine"]["reason"]
        finally:
            srv.stop()


class TestCliShutdown:
    def test_sigint_stops_a_backgrounded_server(self):
        # A process launched with `&` from a non-interactive shell (the
        # CI boot check) inherits SIGINT as SIG_IGN, so Python never
        # installs its KeyboardInterrupt handler; the CLI must install
        # explicit loop signal handlers or `kill -INT` is a no-op and
        # the server runs forever.  Reproduce that inheritance exactly.
        import os
        import pathlib
        import signal
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "1", "--no-cache"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True,
            preexec_fn=lambda: signal.signal(signal.SIGINT, signal.SIG_IGN),
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        assert proc.returncode == 0, out
        assert "shutting down" in out
