"""Wire-protocol and stream-vocabulary tests (no server, no sim)."""

from __future__ import annotations

import json

import pytest

from repro.obs.schema import validate
from repro.serve.protocol import (
    ProtocolError,
    encode_ndjson,
    event_schema,
    parse_ndjson_events,
)
from repro.workloads.stream import (
    StreamSpecError,
    StreamWorkload,
    canonical_steps_json,
    decode_steps_json,
    default_steps,
    normalize_op,
    normalize_step,
    normalize_steps,
)


class TestNormalization:
    def test_defaults_filled(self):
        op = normalize_op({"op": "allreduce"})
        assert op["frame"] == "allreduce"
        assert op["size"] >= 1

    def test_unknown_op_rejected(self):
        with pytest.raises(StreamSpecError):
            normalize_op({"op": "gatherv"})

    def test_unknown_field_rejected(self):
        with pytest.raises(StreamSpecError):
            normalize_op({"op": "barrier", "bogus": 1})

    def test_step_requires_ops(self):
        with pytest.raises(StreamSpecError):
            normalize_step({})

    def test_ranks_selector_forms(self):
        a = normalize_op({"op": "compute", "seconds": 0.1, "ranks": "all"})
        b = normalize_op({"op": "compute", "seconds": 0.1,
                          "ranks": [3, 1, 1, 2]})
        c = normalize_op({"op": "compute", "seconds": 0.1,
                          "ranks": {"mod": 2, "eq": 1}})
        assert a["ranks"] == "all"
        assert b["ranks"] == [1, 2, 3]
        assert c["ranks"] == {"mod": 2, "eq": 1}

    def test_canonical_json_is_stable(self):
        steps = default_steps()
        once = canonical_steps_json(steps)
        again = canonical_steps_json(normalize_steps(json.loads(once)))
        assert once == again

    def test_decode_roundtrip(self):
        steps = default_steps()
        assert decode_steps_json(canonical_steps_json(steps)) == steps

    def test_workload_uses_canonical_params(self):
        w = StreamWorkload()
        assert w.iterations == len(default_steps())


class TestNDJSON:
    def test_parse_and_encode_roundtrip(self):
        steps = default_steps()
        parsed = parse_ndjson_events(encode_ndjson(steps))
        assert parsed == steps

    def test_blank_lines_skipped(self):
        body = b'\n{"ops":[{"op":"barrier"}]}\n\n'
        assert len(parse_ndjson_events(body)) == 1

    def test_bad_json_names_line(self):
        body = b'{"ops":[{"op":"barrier"}]}\nnot json\n'
        with pytest.raises(ProtocolError, match="line 2"):
            parse_ndjson_events(body)

    def test_bad_vocabulary_rejected_atomically(self):
        body = b'{"ops":[{"op":"barrier"}]}\n{"ops":[{"op":"nope"}]}\n'
        with pytest.raises(ProtocolError):
            parse_ndjson_events(body)

    def test_non_utf8_rejected(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            parse_ndjson_events(b"\xff\xfe")

    def test_ops_cap_enforced(self):
        body = encode_ndjson([{"ops": [{"op": "barrier"}] * 3}])
        with pytest.raises(ProtocolError):
            parse_ndjson_events(body, max_ops_per_step=2)


class TestSchema:
    def test_schema_loads_from_checkout(self):
        assert event_schema() is not None

    def test_default_steps_conform(self):
        schema = event_schema()
        for step in default_steps():
            assert validate(step, schema) == []

    def test_schema_rejects_extra_top_level_field(self):
        schema = event_schema()
        assert validate({"ops": [], "extra": 1}, schema)

    def test_schema_rejects_unknown_op(self):
        schema = event_schema()
        errors = validate({"ops": [{"op": "gatherv"}]}, schema)
        assert errors
