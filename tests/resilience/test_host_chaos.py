"""The `repro chaos host` sweep and the HostFaultPlan machinery.

The full 9-scenario sweep runs in CI (twice, diffed); here we keep to the
plan schema, a representative sweep subset, rerun determinism of the
report, and the CLI surface.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.resilience import HostFaultPlan, installed
from repro.resilience.chaos import HOST_SCENARIOS, run_host_chaos
from repro.resilience.hostfaults import (
    ENV_HOST_FAULTS,
    HostFaultPlanError,
    active_plan,
)


class TestHostFaultPlan:
    def test_roundtrip(self):
        plan = HostFaultPlan(kill_shard=1, at_wave=2, cache_mode="flip")
        assert HostFaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(HostFaultPlanError, match="unknown"):
            HostFaultPlan.from_dict({"kill_shards": 1})

    def test_validation(self):
        with pytest.raises(HostFaultPlanError):
            HostFaultPlan(kill_shard=-1).validate()
        with pytest.raises(HostFaultPlanError):
            HostFaultPlan(at_wave=0).validate()
        with pytest.raises(HostFaultPlanError):
            HostFaultPlan(cache_mode="zero").validate()
        with pytest.raises(HostFaultPlanError):
            HostFaultPlan(kill_cell="a", hang_cell="b").validate()

    def test_installed_arms_and_disarms_env(self):
        plan = HostFaultPlan(stop_shard=0)
        assert ENV_HOST_FAULTS not in os.environ
        with installed(plan):
            active = active_plan()
            assert active is not None
            found, owner = active
            assert found == plan
            assert owner == os.getpid()
        assert ENV_HOST_FAULTS not in os.environ

    def test_garbage_env_reads_as_no_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_HOST_FAULTS, "{not json")
        assert active_plan() is None

    def test_empty_plan(self):
        assert HostFaultPlan().is_empty()
        assert not HostFaultPlan(kill_shard=0).is_empty()


class TestHostChaosSweep:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown host chaos"):
            run_host_chaos(["melt-the-disk"])

    def test_cache_scenarios_recover_and_are_deterministic(self, tmp_path):
        report_path = tmp_path / "report.json"
        report = run_host_chaos(["corrupt-cache", "truncate-cache"],
                                report_path=str(report_path))
        assert report["ok"]
        for entry in report["scenarios"].values():
            assert entry["recovered"]
            assert entry["deterministic"]
            assert entry["corrupt_found"] == entry["damaged"]
            assert entry["recomputed_identical"]
        on_disk = json.loads(report_path.read_text())
        assert on_disk == report

    @pytest.mark.slow
    def test_shard_and_pool_scenarios_recover(self):
        report = run_host_chaos(
            ["kill-shard-worker", "kill-pool-worker", "poison-cell"]
        )
        assert report["ok"]
        shard = report["scenarios"]["kill-shard-worker"]
        assert shard["fallback"] == "worker-died"
        assert shard["identical"]
        assert report["scenarios"]["poison-cell"]["target_hit"]

    def test_report_has_no_host_specific_fields(self, tmp_path):
        # The CI job diffs two sweeps byte-for-byte: wall times and tmp
        # paths must never leak into the report.
        report = run_host_chaos(["corrupt-cache"],
                                report_path=str(tmp_path / "r.json"))
        text = (tmp_path / "r.json").read_text()
        assert "wall" not in text
        assert "/tmp" not in text and str(tmp_path) not in text


class TestChaosHostCLI:
    def test_cli_subset_runs_and_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "host.json"
        code = main(["chaos", "host", "--scenario", "corrupt-cache",
                     "--report", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "corrupt-cache" in out
        assert json.loads(report_path.read_text())["ok"]

    def test_cli_rejects_unknown_host_scenario(self):
        with pytest.raises(SystemExit, match="unknown host chaos"):
            main(["chaos", "host", "--scenario", "nope"])

    def test_cli_matrix_default_unchanged(self):
        # `repro chaos` without a kind still means the virtual-time
        # matrix; its scenario names must not be accepted by `host`.
        assert "crash-a-lead" not in HOST_SCENARIOS
