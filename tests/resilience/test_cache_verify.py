"""`RunCache.verify` and the `repro cache verify` CLI.

Verification re-uses the exact schema/key/checksum validation path of
``get``: anything verify flags as corrupt would also have been deleted
lazily on read, and vice versa.  Orphans — leftover ``.tmp`` spills and
entries stranded in stale generation directories — are reported (and
removed with ``--fix``) even though reads would never touch them.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness.cache import RunCache
from repro.obs.instrument import Recorder
from repro.resilience import HostFaultPlan, apply_cache_faults


@pytest.fixture()
def cache(tmp_path):
    return RunCache(root=tmp_path / "cache")


def _fill(cache, n=3):
    digests = [f"{i:02x}" + "ab" * 31 for i in range(n)]
    for i, digest in enumerate(digests):
        cache.put(digest, {"payload": i})
    return digests


class TestVerify:
    def test_clean_cache(self, cache):
        digests = _fill(cache)
        report = cache.verify()
        assert report.clean
        assert report.scanned == len(digests)
        assert report.ok == len(digests)
        assert report.removed == 0

    def test_flip_detected_everywhere_get_would_reject(self, cache):
        digests = _fill(cache)
        damaged = apply_cache_faults(
            HostFaultPlan(cache_mode="flip"), cache, digests=digests[:2]
        )
        assert len(damaged) == 2
        report = cache.verify()
        assert sorted(report.corrupt) == sorted(damaged)
        assert report.ok == 1
        # verify() and get() agree: the flagged entries read as misses.
        assert cache.get(digests[0]) is None
        assert cache.get(digests[2]) == {"payload": 2}

    def test_truncation_detected(self, cache):
        digests = _fill(cache, n=2)
        apply_cache_faults(HostFaultPlan(cache_mode="truncate"), cache)
        report = cache.verify()
        assert len(report.corrupt) == 2
        assert report.ok == 0
        assert all(cache.get(d) is None for d in digests)

    def test_orphans_tmp_and_stale_generations(self, cache):
        _fill(cache, n=1)
        gen_dir = cache.root / cache.generation
        (gen_dir / "aa").mkdir(parents=True, exist_ok=True)
        (gen_dir / "aa" / "spill.tmp").write_bytes(b"partial write")
        stale = cache.root / "v1-000000000000" / "ab"
        stale.mkdir(parents=True)
        (stale / ("ab" * 32 + ".pkl")).write_bytes(b"old generation")
        report = cache.verify()
        assert report.scanned == 1 and report.ok == 1
        assert len(report.orphaned) == 2
        assert not report.clean

    def test_fix_removes_damage(self, cache):
        digests = _fill(cache)
        apply_cache_faults(HostFaultPlan(cache_mode="flip"), cache)
        (cache.root / "leftover.tmp").write_bytes(b"x")
        report = cache.verify(fix=True)
        assert report.removed == len(digests) + 1
        after = cache.verify()
        assert after.clean
        assert after.scanned == 0

    def test_corruption_counts_through_fault_instrument(self, tmp_path):
        recorder = Recorder()
        cache = RunCache(root=tmp_path / "cache", instrument=recorder)
        _fill(cache, n=2)
        apply_cache_faults(HostFaultPlan(cache_mode="flip"), cache)
        before = cache.stats.invalidated
        cache.verify()
        assert cache.stats.invalidated == before + 2
        assert recorder.metrics.value("fault/cache_invalidated") == 2.0

    def test_report_as_dict_roundtrips_json(self, cache):
        _fill(cache, n=1)
        report = cache.verify()
        data = json.loads(json.dumps(report.as_dict()))
        assert data["scanned"] == 1
        assert data["generation"] == cache.generation


class TestCacheVerifyCLI:
    def test_clean_exits_zero(self, tmp_path, capsys):
        cache = RunCache(root=tmp_path / "cache")
        _fill(cache, n=2)
        code = main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "cache")])
        assert code == 0
        assert "cache clean" in capsys.readouterr().out

    def test_damage_exits_nonzero_then_fix_repairs(self, tmp_path, capsys):
        cache = RunCache(root=tmp_path / "cache")
        _fill(cache, n=2)
        apply_cache_faults(HostFaultPlan(cache_mode="truncate"), cache)
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "cache")]) == 1
        assert main(["cache", "verify", "--fix", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        assert main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "cache")]) == 0

    def test_json_report(self, tmp_path, capsys):
        cache = RunCache(root=tmp_path / "cache")
        _fill(cache, n=1)
        report_path = tmp_path / "cache-report.json"
        code = main(["cache", "verify", "--cache-dir",
                     str(tmp_path / "cache"), "--report", str(report_path)])
        assert code == 0
        data = json.loads(report_path.read_text())
        assert data["ok"] == 1 and data["corrupt"] == []
