"""Harness host-fault recovery: deadlines, bounded retry, quarantine.

A poisoned cell (one that deterministically kills every pool worker it
lands on) must cost the batch exactly itself: siblings complete, the
poison is identified precisely (isolation mode) and surfaced through
:class:`QuarantineError` *with* the completed partial results.  Transient
kills retry and succeed; hangs trip the per-cell wall-clock deadline.
"""

from __future__ import annotations

import pytest

from repro.harness.engine import CellEvent, ExperimentEngine, make_cell
from repro.harness.runner import Mode
from repro.resilience import (
    HostFaultPlan,
    QuarantineError,
    RetryPolicy,
    installed,
)

#: Near-zero backoff + tight deadline so each test runs in seconds.
FAST = RetryPolicy(max_attempts=2, cell_deadline=1.5, backoff_base=0.01,
                   backoff_cap=0.05, poll_interval=0.02)


def _cells(n=6):
    return [
        make_cell("uniform", 4, Mode.APP, workload_params={"iterations": it})
        for it in range(3, 3 + n)
    ]


class TestQuarantine:
    def test_poison_cell_quarantined_siblings_finish(self):
        cells = _cells(6)
        poison = cells[2].digest()
        engine = ExperimentEngine(jobs=2, cache=None, policy=FAST)
        with installed(HostFaultPlan(kill_cell=poison)):
            with pytest.raises(QuarantineError) as excinfo:
                engine.run_cells(cells)
        err = excinfo.value
        assert [q.digest for q in err.quarantined] == [poison]
        assert err.quarantined[0].reason == "pool-crash"
        assert err.quarantined[0].attempts == FAST.max_attempts
        # Partial results survive: every sibling completed, only the
        # poisoned index is None.
        assert [i for i, r in enumerate(err.results) if r is None] == [2]
        assert engine.metrics.quarantined == 1

    def test_hanging_cell_trips_deadline(self):
        cells = _cells(4)
        target = cells[1].digest()
        engine = ExperimentEngine(jobs=2, cache=None, policy=FAST)
        with installed(HostFaultPlan(hang_cell=target, hang_s=60.0)):
            with pytest.raises(QuarantineError) as excinfo:
                engine.run_cells(cells)
        err = excinfo.value
        assert [q.digest for q in err.quarantined] == [target]
        assert err.quarantined[0].reason == "deadline"
        assert sum(1 for r in err.results if r is not None) == 3

    def test_transient_kill_retries_to_completion(self, tmp_path):
        cells = _cells(4)
        target = cells[1].digest()
        events: list[CellEvent] = []
        engine = ExperimentEngine(jobs=2, cache=None, policy=FAST,
                                  progress=events.append)
        plan = HostFaultPlan(kill_cell=target, attempts=1,
                             state_dir=str(tmp_path))
        with installed(plan):
            results = engine.run_cells(cells)
        assert all(r is not None for r in results)
        assert engine.metrics.quarantined == 0
        retries = [e for e in events if e.kind == "retry"]
        assert retries, "pool crash must surface a retry event"
        # The retry event names the suspected cells, not just a count.
        assert any("uniform/P=4/app" in e.label for e in retries)

    def test_quarantine_event_emitted(self):
        cells = _cells(4)
        poison = cells[0].digest()
        events: list[CellEvent] = []
        engine = ExperimentEngine(jobs=2, cache=None, policy=FAST,
                                  progress=events.append)
        with installed(HostFaultPlan(kill_cell=poison)):
            with pytest.raises(QuarantineError):
                engine.run_cells(cells)
        kinds = {e.kind for e in events}
        assert "quarantine" in kinds
        quarantine = [e for e in events if e.kind == "quarantine"][0]
        assert quarantine.digest == poison

    def test_inline_execution_never_injured(self):
        # jobs=1 executes in-process; the owner-pid guard means a cell
        # fault plan cannot kill the coordinating process.
        cells = _cells(3)
        engine = ExperimentEngine(jobs=1, cache=None, policy=FAST)
        with installed(HostFaultPlan(kill_cell=cells[0].digest())):
            results = engine.run_cells(cells)
        assert all(r is not None for r in results)

    def test_parallel_results_identical_to_serial_under_faults(self, tmp_path):
        cells = _cells(4)
        target = cells[2].digest()
        serial = ExperimentEngine(jobs=1, cache=None).run_cells(cells)
        engine = ExperimentEngine(jobs=2, cache=None, policy=FAST)
        plan = HostFaultPlan(kill_cell=target, attempts=1,
                             state_dir=str(tmp_path))
        with installed(plan):
            recovered = engine.run_cells(cells)
        assert [r.fingerprint() for r in recovered] == \
            [r.fingerprint() for r in serial]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(cell_deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(poll_interval=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=-0.1)

    def test_from_env_reads_cell_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "12.5")
        assert RetryPolicy.from_env().cell_deadline == 12.5
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "0")
        assert RetryPolicy.from_env().cell_deadline is None
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "nope")
        assert RetryPolicy.from_env().cell_deadline is None

    def test_quarantine_error_message_and_payload(self):
        from repro.resilience.policy import QuarantinedCell

        err = QuarantineError(
            [QuarantinedCell("w/P=4/app", "abc123", 3, "pool-crash")],
            [object(), None, object()],
        )
        assert "1 cell(s) quarantined" in str(err)
        assert "2/3 results completed" in str(err)
        assert err.quarantined[0].attempts == 3
