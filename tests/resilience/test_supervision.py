"""Shard-worker supervision: injected host faults end in recorded
fallbacks with bit-identical results, never a hang.

Every test arms a :class:`HostFaultPlan` against a 2-shard run of a small
p2p + collective kernel and asserts (a) the coordinator detects the fault
within the (deliberately small) supervision deadline, (b) the recorded
``shard_fallback`` reason matches the fault class, and (c) the fallback
rerun on the single-process oracle is bit-identical to an undisturbed
``shards=1`` run — a host fault can never change a virtual-time answer.
"""

from __future__ import annotations

import pytest

from repro.resilience import HostFaultPlan, installed
from repro.resilience.policy import RetryPolicy
from repro.resilience.supervise import (
    ENV_HEARTBEAT,
    ENV_WAVE_DEADLINE,
    WorkerTimeout,
    heartbeat_interval,
    wave_deadline,
)
from repro.simmpi import SimConfig, run_spmd

NPROCS = 8


async def _kernel(ctx):
    comm, rank, size = ctx.comm, ctx.rank, ctx.size
    right, left = (rank + 1) % size, (rank - 1) % size
    acc = 0.0
    for r in range(3):
        send = comm.isend(right, rank * 10 + r, tag=r)
        acc += await comm.recv(source=left, tag=r)
        await send.wait()
        acc += await comm.allreduce(rank + r * 0.25)
    await comm.barrier()
    return acc


@pytest.fixture(autouse=True)
def _fast_supervision(monkeypatch):
    """Small deadlines so fault detection takes ~2s, not the 30s default."""
    monkeypatch.setenv(ENV_WAVE_DEADLINE, "2")
    monkeypatch.setenv(ENV_HEARTBEAT, "0.1")


@pytest.fixture(scope="module")
def oracle():
    return run_spmd(_kernel, NPROCS, config=SimConfig(shards=1))


def _assert_identical(result, oracle):
    assert result.results == oracle.results
    assert result.clocks == oracle.clocks
    assert result.busy_times == oracle.busy_times
    assert result.total_messages == oracle.total_messages
    assert result.total_bytes == oracle.total_bytes


def _faulted_run(plan):
    with installed(plan):
        return run_spmd(_kernel, NPROCS, config=SimConfig(shards=2))


class TestShardSupervision:
    def test_killed_worker_falls_back_bit_identical(self, oracle):
        result = _faulted_run(HostFaultPlan(kill_shard=1))
        assert result.extras["shard_fallback"] == "worker-died"
        _assert_identical(result, oracle)

    def test_sigstopped_worker_times_out(self, oracle):
        # A stopped process stops heartbeating but stays alive; SIGTERM
        # queues on it, so teardown must escalate to SIGKILL.
        result = _faulted_run(HostFaultPlan(stop_shard=0))
        assert result.extras["shard_fallback"] == "worker-timeout"
        assert result.extras["shard_teardown"] == "killed"
        _assert_identical(result, oracle)

    def test_slow_worker_exceeds_wave_deadline(self, oracle):
        # The worker sleeps through the wave while its heartbeat thread
        # keeps beating: only the hard deadline can catch it.
        result = _faulted_run(HostFaultPlan(delay_shard=1, delay_s=30.0))
        assert result.extras["shard_fallback"] == "worker-timeout"
        _assert_identical(result, oracle)

    def test_worker_wedged_finalizing_is_hung(self, oracle):
        result = _faulted_run(HostFaultPlan(stall_final=1, delay_s=30.0))
        assert result.extras["shard_fallback"] == "worker-hung"
        _assert_identical(result, oracle)

    def test_fault_detection_and_rerun_is_deterministic(self, oracle):
        plan = HostFaultPlan(kill_shard=0)
        first = _faulted_run(plan)
        second = _faulted_run(plan)
        assert first.extras["shard_fallback"] == "worker-died"
        assert second.extras["shard_fallback"] == "worker-died"
        _assert_identical(first, oracle)
        _assert_identical(second, oracle)

    def test_happy_path_unaffected_by_supervision(self, oracle):
        result = run_spmd(_kernel, NPROCS, config=SimConfig(shards=2))
        assert "shard_fallback" not in result.extras
        assert "shard_teardown" not in result.extras
        _assert_identical(result, oracle)


class TestSupervisionKnobs:
    def test_wave_deadline_reads_env(self, monkeypatch):
        monkeypatch.setenv(ENV_WAVE_DEADLINE, "7.5")
        assert wave_deadline() == 7.5
        monkeypatch.setenv(ENV_WAVE_DEADLINE, "garbage")
        assert wave_deadline() == 30.0
        monkeypatch.setenv(ENV_WAVE_DEADLINE, "-1")
        assert wave_deadline() == 30.0

    def test_heartbeat_interval_derived_and_bounded(self, monkeypatch):
        monkeypatch.setenv(ENV_HEARTBEAT, "0.25")
        assert heartbeat_interval() == 0.25
        monkeypatch.delenv(ENV_HEARTBEAT)
        monkeypatch.setenv(ENV_WAVE_DEADLINE, "2")
        # Derived: MISSED_BEATS gaps fit well inside the deadline.
        assert heartbeat_interval() * 4 < 2.0

    def test_worker_timeout_carries_reason(self):
        err = WorkerTimeout("worker-hung")
        assert err.reason == "worker-hung"

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=2.0,
                             backoff_jitter=0.5)
        sleeps = [policy.backoff(n) for n in range(1, 10)]
        assert sleeps == [policy.backoff(n) for n in range(1, 10)]
        assert all(s <= 2.0 * 1.5 for s in sleeps)
        assert sleeps[0] >= 0.1
