"""CLI observability surface: --trace-out/--metrics-out/--obs-out, trace, stats."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def obs_run(tmp_path_factory):
    """One instrumented synthetic run with every output flavour written."""
    tmp = tmp_path_factory.mktemp("obs")
    paths = {
        "trace": str(tmp / "t.json"),
        "metrics": str(tmp / "m.jsonl"),
        "bundle": str(tmp / "run.obs.json"),
    }
    rc = main(
        ["run", "--workload", "synthetic", "--nprocs", "4", "--iterations",
         "3", "--mode", "chameleon", "--no-cache",
         "--trace-out", paths["trace"],
         "--metrics-out", paths["metrics"],
         "--obs-out", paths["bundle"]]
    )
    assert rc == 0
    return paths


def test_trace_out_is_valid_chrome_trace(obs_run):
    with open(obs_run["trace"], encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert events and doc["otherData"]["generator"] == "repro.obs"
    # one span lane per rank, with state-transition instants on them
    span_lanes = {e["pid"] for e in events if e["ph"] == "X"}
    assert span_lanes == {0, 1, 2, 3}
    assert any(
        e["ph"] == "i" and e["name"] == "state_transition" for e in events
    )
    stamps = [e["ts"] for e in events if e["ph"] != "M"]
    assert stamps == sorted(stamps)


def test_metrics_out_is_jsonl(obs_run):
    with open(obs_run["metrics"], encoding="utf-8") as fh:
        rows = [json.loads(line) for line in fh]
    assert rows
    names = {r["name"] for r in rows}
    assert any(n.startswith("coll/") for n in names)
    assert any(n.startswith("chameleon/") for n in names)


def test_trace_subcommand(obs_run, tmp_path, capsys):
    out = str(tmp_path / "exported.json")
    assert main(["trace", obs_run["bundle"], "-o", out]) == 0
    assert "ui.perfetto.dev" in capsys.readouterr().out
    with open(out, encoding="utf-8") as fh:
        exported = json.load(fh)
    with open(obs_run["trace"], encoding="utf-8") as fh:
        direct = json.load(fh)
    assert exported == direct  # offline export == live export


def test_stats_subcommand(obs_run, tmp_path, capsys):
    jsonl = str(tmp_path / "stats.jsonl")
    assert main(["stats", obs_run["bundle"], "--jsonl", jsonl]) == 0
    out = capsys.readouterr().out
    assert "observability summary" in out
    assert "state transitions" in out
    with open(jsonl, encoding="utf-8") as fh:
        assert all(json.loads(line) for line in fh)


def test_trace_rejects_chrome_trace_input(obs_run):
    with pytest.raises(SystemExit, match="Chrome trace"):
        main(["trace", obs_run["trace"]])


def test_trace_rejects_missing_file():
    with pytest.raises(SystemExit, match="cannot read"):
        main(["trace", "/nonexistent/run.obs.json"])


def test_plain_run_stays_uninstrumented(capsys):
    rc = main(
        ["run", "--workload", "synthetic", "--nprocs", "4", "--iterations",
         "3", "--mode", "app", "--no-cache"]
    )
    assert rc == 0
    assert "chrome trace" not in capsys.readouterr().out
