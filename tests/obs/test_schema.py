"""The dependency-free JSON-schema subset validator."""

import pytest

from repro.obs.schema import SchemaError, check, validate


class TestTypes:
    def test_basic_types(self):
        assert validate(1, {"type": "integer"}) == []
        assert validate(1.5, {"type": "number"}) == []
        assert validate("x", {"type": "string"}) == []
        assert validate(True, {"type": "boolean"}) == []
        assert validate(None, {"type": "null"}) == []
        assert validate({}, {"type": "object"}) == []
        assert validate([], {"type": "array"}) == []

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "integer"})
        assert validate(True, {"type": "number"})

    def test_integral_float_is_integer(self):
        assert validate(2.0, {"type": "integer"}) == []
        assert validate(2.5, {"type": "integer"})

    def test_type_union(self):
        schema = {"type": ["number", "null"]}
        assert validate(None, schema) == []
        assert validate(3, schema) == []
        assert validate("x", schema)


class TestKeywords:
    def test_enum(self):
        assert validate("X", {"enum": ["X", "i"]}) == []
        assert validate("Z", {"enum": ["X", "i"]})

    def test_minimum_maximum(self):
        assert validate(5, {"minimum": 0, "maximum": 10}) == []
        assert validate(-1, {"minimum": 0})
        assert validate(11, {"maximum": 10})

    def test_required_and_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
        }
        assert validate({"a": 1}, schema) == []
        assert validate({}, schema)
        assert validate({"a": "x"}, schema)

    def test_additional_properties_false(self):
        schema = {
            "type": "object",
            "properties": {"a": {}},
            "additionalProperties": False,
        }
        assert validate({"a": 1}, schema) == []
        assert validate({"a": 1, "b": 2}, schema)

    def test_items_and_min_items(self):
        schema = {
            "type": "array",
            "minItems": 1,
            "items": {"type": "integer"},
        }
        assert validate([1, 2], schema) == []
        assert validate([], schema)
        assert validate([1, "x"], schema)

    def test_unknown_keywords_ignored(self):
        assert validate(1, {"type": "integer", "format": "int64"}) == []


class TestErrors:
    def test_paths_name_the_violation(self):
        schema = {
            "type": "object",
            "properties": {
                "events": {"type": "array", "items": {"type": "object"}}
            },
        }
        errors = validate({"events": [{}, 3]}, schema)
        assert errors == [
            "$.events[1]: expected type object, got int"
        ]

    def test_check_raises(self):
        with pytest.raises(SchemaError) as exc:
            check("x", {"type": "integer"})
        assert exc.value.errors
