"""Instrument event bus: no-op fast path and the Recorder.

The load-bearing guarantee is the first test class: a run with a live
Recorder must be *bit-identical* in virtual time to the same run with the
default no-op instrument — instrumentation observes, never perturbs.
"""

import pytest

from repro.harness.runner import Mode, run_mode
from repro.obs import NULL_INSTRUMENT, ObsData, Recorder
from repro.workloads import make_workload

PARAMS = {"iterations": 4}
NP = 8


def _run(mode, instrument=None):
    return run_mode(
        make_workload("synthetic", **PARAMS), NP, mode, instrument=instrument
    )


class TestNoopFastPath:
    @pytest.mark.parametrize(
        "mode", [Mode.APP, Mode.SCALATRACE, Mode.CHAMELEON]
    )
    def test_recorder_does_not_perturb_virtual_time(self, mode):
        plain = _run(mode)
        recorded = _run(mode, instrument=Recorder())
        assert recorded.clocks == plain.clocks  # bit-identical, not approx
        assert recorded.busy_times == plain.busy_times
        assert recorded.max_time == plain.max_time
        assert recorded.total_time == plain.total_time

    def test_traces_byte_identical(self):
        plain = _run(Mode.CHAMELEON)
        recorded = _run(Mode.CHAMELEON, instrument=Recorder())
        assert plain.trace is not None
        assert recorded.trace.serialize() == plain.trace.serialize()
        # fingerprint ignores obs, so cached/instrumented results compare
        assert recorded.fingerprint() == plain.fingerprint()

    def test_null_instrument_is_the_default(self):
        assert NULL_INSTRUMENT.enabled is False
        # hooks are inert and never raise
        NULL_INSTRUMENT.span(0, "x", "cat", 0.0, 1.0)
        NULL_INSTRUMENT.instant(0, "x", "cat", 0.0)

    def test_plain_run_has_no_obs(self):
        assert _run(Mode.CHAMELEON).obs is None


class TestRecorder:
    @pytest.fixture(scope="class")
    def chameleon_obs(self):
        result = _run(Mode.CHAMELEON, instrument=Recorder())
        assert result.obs is not None
        return result.obs

    def test_snapshot_meta(self, chameleon_obs):
        assert chameleon_obs.meta["mode"] == "chameleon"
        assert chameleon_obs.meta["nprocs"] == NP
        assert "dropped_events" not in chameleon_obs.meta

    def test_every_rank_has_a_lane(self, chameleon_obs):
        assert chameleon_obs.ranks() == list(range(NP))
        for rank in range(NP):
            assert chameleon_obs.spans_for(rank=rank, cat="sched")

    def test_layers_all_emit(self, chameleon_obs):
        cats = {s.cat for s in chameleon_obs.spans}
        assert {"sched", "coll", "chameleon"} <= cats
        icats = {i.cat for i in chameleon_obs.instants}
        assert {"sched", "chameleon", "state"} <= icats
        assert chameleon_obs.instants_for(name="marker")

    def test_state_transitions_recorded(self, chameleon_obs):
        transitions = chameleon_obs.instants_for(name="state_transition")
        assert transitions
        first = transitions[0]
        assert first.args["from"] == "start"
        states = {t.args["to"] for t in transitions}
        assert "final" in states  # finalize always reaches F

    def test_metrics_collected(self, chameleon_obs):
        reg = chameleon_obs.metrics
        assert reg.value("coll/calls") > 0
        assert reg.value("marker/effective_calls") > 0
        assert reg.value("p2p/messages") > 0

    def test_roundtrip(self, chameleon_obs):
        back = ObsData.from_dict(chameleon_obs.to_dict())
        assert back.to_dict() == chameleon_obs.to_dict()
        assert len(back.spans) == len(chameleon_obs.spans)
        assert back.metrics.value("coll/calls") == (
            chameleon_obs.metrics.value("coll/calls")
        )

    def test_max_events_drops_and_counts(self):
        rec = Recorder(max_events=3)
        for i in range(5):
            rec.instant(0, f"e{i}", "t", float(i))
        assert len(rec.instants) == 3
        assert rec.dropped == 2
        assert rec.snapshot().meta["dropped_events"] == 2

    def test_clear(self):
        rec = Recorder()
        rec.span(0, "s", "t", 0.0, 1.0)
        rec.metrics.count("x", 1)
        rec.clear()
        assert not rec.spans and len(rec.metrics) == 0
