"""MetricsRegistry: labels, aggregation, bucketing, serialization."""

import pytest

from repro.obs.metrics import NULL_METRICS, Histogram, MetricsRegistry


class TestCounters:
    def test_wildcard_aggregation(self):
        reg = MetricsRegistry()
        reg.count("p2p/bytes", 10, rank=0, op="send")
        reg.count("p2p/bytes", 20, rank=1, op="send")
        reg.count("p2p/bytes", 5, rank=0, op="recv")
        assert reg.value("p2p/bytes") == 35
        assert reg.value("p2p/bytes", rank=0) == 15
        assert reg.value("p2p/bytes", op="send") == 30
        assert reg.value("p2p/bytes", rank=1, op="send") == 20
        assert reg.value("nope") == 0.0

    def test_phase_label(self):
        reg = MetricsRegistry()
        reg.count("chameleon/state_markers", 3, phase="AT")
        reg.count("chameleon/state_markers", 7, phase="C")
        assert reg.value("chameleon/state_markers", phase="AT") == 3
        assert reg.value("chameleon/state_markers") == 10

    def test_has_and_names(self):
        reg = MetricsRegistry()
        reg.count("a/x", 1)
        reg.gauge("b/y", 2.0)
        reg.observe("c/z", 3.0)
        assert reg.has("a/x") and reg.has("b/y") and reg.has("c/z")
        assert not reg.has("a")
        assert reg.names() == ["a/x", "b/y", "c/z"]

    def test_labels_sorted(self):
        reg = MetricsRegistry()
        reg.count("m", 1, rank=3)
        reg.count("m", 1, rank=0)
        reg.count("m", 1)
        keys = reg.labels("m")
        assert [k[1] for k in keys] == [None, 0, 3]


class TestSeries:
    def test_time_bucketing(self):
        reg = MetricsRegistry(time_bucket=0.5)
        reg.count("ev", 1, t=0.1)
        reg.count("ev", 1, t=0.4)
        reg.count("ev", 1, t=0.9)
        assert reg.series("ev") == [(0.0, 2.0), (0.5, 1.0)]

    def test_disabled_without_bucket(self):
        reg = MetricsRegistry()
        reg.count("ev", 1, t=0.1)
        assert reg.series("ev") == []

    def test_negative_bucket_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(time_bucket=-1.0)


class TestHistograms:
    def test_observe_and_merge(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 1000.0):
            reg.observe("lat", v, rank=0)
        reg.observe("lat", 4.0, rank=1)
        merged = reg.histogram("lat")
        assert merged.count == 4
        assert merged.max == 1000.0
        assert reg.histogram("lat", rank=1).count == 1

    def test_histogram_mean_empty(self):
        assert Histogram().mean == 0.0


class TestCombination:
    def test_merge_adds_counters(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.count("x", 1, rank=0)
        b.count("x", 2, rank=0)
        b.count("y", 5)
        b.observe("h", 3.0)
        a.merge(b)
        assert a.value("x", rank=0) == 3
        assert a.value("y") == 5
        assert a.histogram("h").count == 1

    def test_roundtrip(self):
        reg = MetricsRegistry(time_bucket=0.25)
        reg.count("c", 2, rank=1, phase="L", op="send", t=0.3)
        reg.gauge("g", 9.5, rank=0)
        reg.observe("h", 7.0)
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.value("c", rank=1, phase="L") == 2
        assert back.series("c") == reg.series("c")
        assert back.histogram("h").total == 7.0
        assert back.to_dict() == reg.to_dict()

    def test_rows_are_flat_json(self):
        reg = MetricsRegistry()
        reg.count("c", 1, rank=0)
        reg.observe("h", 2.0)
        rows = reg.rows()
        kinds = {r["kind"] for r in rows}
        assert kinds == {"counter", "histogram"}
        assert all("name" in r for r in rows)


def test_null_metrics_discards_everything():
    NULL_METRICS.count("x", 1)
    NULL_METRICS.gauge("y", 2.0)
    NULL_METRICS.observe("z", 3.0)
    assert len(NULL_METRICS) == 0
    assert NULL_METRICS.value("x") == 0.0
