"""Exporters: Chrome trace well-formedness, metrics JSONL, summaries."""

import io
import json
from pathlib import Path

import pytest

from repro.harness.runner import Mode, run_mode
from repro.obs import (
    Recorder,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics_jsonl,
    format_summary,
)
from repro.obs.schema import validate
from repro.workloads import make_workload

SCHEMAS = Path(__file__).resolve().parents[2] / "schemas"


@pytest.fixture(scope="module")
def result():
    return run_mode(
        make_workload("synthetic", iterations=4), 8, Mode.CHAMELEON,
        instrument=Recorder(),
    )


@pytest.fixture(scope="module")
def trace_doc(result):
    return export_chrome_trace(result.obs)


class TestChromeTrace:
    def test_json_serializable_roundtrip(self, trace_doc):
        assert json.loads(json.dumps(trace_doc)) == trace_doc

    def test_events_sorted_by_timestamp(self, trace_doc):
        stamps = [
            e["ts"] for e in trace_doc["traceEvents"] if e["ph"] != "M"
        ]
        assert stamps == sorted(stamps)

    def test_pid_tid_are_the_rank(self, result, trace_doc):
        for event in trace_doc["traceEvents"]:
            assert event["pid"] == event["tid"]
            assert 0 <= event["pid"] < result.nprocs

    def test_one_lane_per_rank(self, result, trace_doc):
        span_lanes = {
            e["pid"] for e in trace_doc["traceEvents"] if e["ph"] == "X"
        }
        assert span_lanes == set(range(result.nprocs))
        names = {
            (e["pid"], e["args"]["name"])
            for e in trace_doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {(r, f"rank {r}") for r in range(result.nprocs)}

    def test_state_transition_instants_present(self, trace_doc):
        instants = [
            e
            for e in trace_doc["traceEvents"]
            if e["ph"] == "i" and e["name"] == "state_transition"
        ]
        assert instants
        assert all(e["s"] == "t" for e in instants)

    def test_timestamps_are_virtual_microseconds(self, result, trace_doc):
        horizon = result.max_time * 1e6
        for e in trace_doc["traceEvents"]:
            if e["ph"] != "M":
                assert 0 <= e["ts"] <= horizon * 1.001

    def test_matches_checked_in_schema(self, trace_doc):
        schema = json.loads(
            (SCHEMAS / "chrome_trace.schema.json").read_text()
        )
        assert validate(json.loads(json.dumps(trace_doc)), schema) == []

    def test_write_to_path(self, result, tmp_path):
        out = tmp_path / "t.json"
        export_chrome_trace(result.obs, str(out))
        assert json.loads(out.read_text())["otherData"]["generator"] == (
            "repro.obs"
        )

    def test_nested_spans_sorted_longest_first(self, result):
        events = chrome_trace_events(result.obs)
        timed = [e for e in events if e["ph"] != "M"]
        for a, b in zip(timed, timed[1:]):
            if a["ts"] == b["ts"] and a["pid"] == b["pid"]:
                assert a.get("dur", 0.0) >= b.get("dur", 0.0)


class TestMetricsJsonl:
    def test_rows_validate(self, result):
        buf = io.StringIO()
        n = export_metrics_jsonl(result.registry(), buf)
        lines = buf.getvalue().splitlines()
        assert len(lines) == n > 0
        schema = json.loads(
            (SCHEMAS / "metrics_row.schema.json").read_text()
        )
        for line in lines:
            assert validate(json.loads(line), schema) == []

    def test_accepts_obsdata(self, result, tmp_path):
        out = tmp_path / "m.jsonl"
        n = export_metrics_jsonl(result.obs, str(out))
        assert n == len(out.read_text().splitlines())


class TestSummary:
    def test_mentions_every_layer(self, result):
        text = format_summary(result.obs)
        assert "span time by category" in text
        assert "state transitions" in text
        assert "coll/calls" in text
        assert f"{result.nprocs} ranks" in text

    def test_empty_obs_does_not_crash(self):
        from repro.obs import ObsData

        assert "observability summary" in format_summary(ObsData())
