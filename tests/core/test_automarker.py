"""Automatic marker insertion (paper §VII: 'can be automated')."""

import pytest

from repro.core import AutoMarkerTracer, ChameleonConfig, ChameleonTracer
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def run_auto(prog, nprocs, k=3, confirmations=3):
    async def main(ctx):
        tracer = AutoMarkerTracer(
            ctx, ChameleonConfig(k=k), confirmations=confirmations
        )
        await prog(ctx, tracer)
        trace = await tracer.finalize()
        return {
            "trace": trace,
            "cstats": tracer.cstats,
            "anchor": tracer.anchor_sig,
            "auto_markers": tracer.auto_markers,
        }

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results


async def stencil_no_markers(ctx, tr, steps=12):
    """An iterative kernel WITHOUT any tracer.marker() calls."""
    for _ in range(steps):
        with ctx.frame("halo"):
            if ctx.rank + 1 < ctx.size:
                await tr.send(ctx.rank + 1, None, size=64)
            if ctx.rank > 0:
                await tr.recv(ctx.rank - 1)
        with ctx.frame("residual"):
            await tr.allreduce(0.0, size=8)


class TestAnchorDetection:
    def test_anchor_found_on_iterative_code(self):
        res = run_auto(stencil_no_markers, 4)
        r0 = res[0]
        assert r0["anchor"] is not None
        # 12 timesteps: detection consumes `confirmations` of them, the
        # rest fire markers
        assert r0["auto_markers"] >= 8

    def test_all_ranks_agree_on_anchor(self):
        res = run_auto(stencil_no_markers, 6)
        anchors = {r["anchor"] for r in res}
        assert len(anchors) == 1
        markers = {r["auto_markers"] for r in res}
        assert len(markers) == 1

    def test_clustering_happens_without_manual_markers(self):
        res = run_auto(stencil_no_markers, 8)
        cs = res[0]["cstats"]
        assert cs.state_counts.get("clustering", 0) >= 1
        assert cs.state_counts.get("lead", 0) >= 1

    def test_trace_complete(self):
        steps = 12
        res = run_auto(lambda c, t: stencil_no_markers(c, t, steps), 4)
        trace = res[0]["trace"]
        # every allreduce is in the trace (one per step)
        from repro.scalatrace import Op

        allreduce_mass = sum(
            l.record.dhist.total
            for l in trace.leaves()
            if l.record.op is Op.ALLREDUCE
        )
        assert allreduce_mass >= steps  # at least the anchor occurrences

    def test_manual_marker_is_noop(self):
        async def prog(ctx, tr):
            await stencil_no_markers(ctx, tr, steps=6)
            assert await tr.marker() is None

        run_auto(prog, 4)

    def test_no_anchor_in_aperiodic_code(self):
        async def prog(ctx, tr):
            # every collective from a different call site: never periodic
            with ctx.frame("a"):
                await tr.allreduce(0.0, size=8)
            with ctx.frame("b"):
                await tr.allreduce(0.0, size=8)
            with ctx.frame("c"):
                await tr.barrier()
            with ctx.frame("d"):
                await tr.barrier()

        res = run_auto(prog, 4)
        assert res[0]["anchor"] is None
        assert res[0]["auto_markers"] == 0

    def test_confirmations_validation(self):
        async def main(ctx):
            AutoMarkerTracer(ctx, confirmations=1)

        from repro.simmpi import TaskFailedError

        with pytest.raises(TaskFailedError):
            run_spmd(main, 1)

    def test_comparable_to_manual_markers(self):
        """Auto markers should reach the same steady lead phase as a
        manually markered run."""

        async def manual(ctx):
            tracer = ChameleonTracer(ctx, ChameleonConfig(k=3))
            for _ in range(12):
                with ctx.frame("halo"):
                    if ctx.rank + 1 < ctx.size:
                        await tracer.send(ctx.rank + 1, None, size=64)
                    if ctx.rank > 0:
                        await tracer.recv(ctx.rank - 1)
                with ctx.frame("residual"):
                    await tracer.allreduce(0.0, size=8)
                await tracer.marker()
            await tracer.finalize()
            return tracer.cstats

        manual_cs = run_spmd(manual, 8, config=SimConfig(network=ZERO_COST)).results[0]
        auto_cs = run_auto(stencil_no_markers, 8)[0]["cstats"]
        assert auto_cs.state_counts.get("clustering") == manual_cs.state_counts.get(
            "clustering"
        )
        assert auto_cs.num_callpaths == manual_cs.num_callpaths
