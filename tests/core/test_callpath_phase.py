"""Interval signatures and the Algorithm 1 transition graph."""

import pytest

from repro.core import MarkerState, PhaseTracker, SignatureAccumulator
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


class TestSignatureAccumulator:
    def test_empty_interval(self):
        acc = SignatureAccumulator()
        sigs = acc.snapshot()
        assert sigs.callpath == 0 and sigs.src == 0 and sigs.dest == 0
        assert acc.prsd_events == 0

    def test_matches_reference_formula(self):
        from repro.scalatrace import callpath_signature

        stack_sigs = [0xDEAD, 0xBEEF, 0xDEAD, 0xCAFE]
        acc = SignatureAccumulator()
        for s in stack_sigs:
            acc.observe(s)
        assert acc.snapshot().callpath == callpath_signature(stack_sigs)

    def test_reset_starts_new_interval(self):
        acc = SignatureAccumulator()
        acc.observe(1, src_offset=1, dest_offset=-1)
        first = acc.snapshot()
        acc.reset()
        assert acc.snapshot().callpath == 0
        acc.observe(1, src_offset=1, dest_offset=-1)
        assert acc.snapshot() == first

    def test_endpoint_signatures_flow_through(self):
        acc = SignatureAccumulator()
        acc.observe(1, src_offset=None, dest_offset=2)
        sigs = acc.snapshot()
        assert sigs.src == 0 and sigs.dest != 0

    def test_prsd_events_counts_distinct_sites(self):
        acc = SignatureAccumulator()
        for s in [1, 2, 1, 2, 1, 2]:
            acc.observe(s)
        assert acc.prsd_events == 2
        assert acc.events == 6

    def test_identical_streams_identical_triples(self):
        a, b = SignatureAccumulator(), SignatureAccumulator()
        for acc in (a, b):
            acc.observe(11, dest_offset=1)
            acc.observe(22, src_offset=-1)
        assert a.snapshot() == b.snapshot()


def run_phase_sequence(per_rank_callpaths):
    """Drive PhaseTracker on N ranks; per_rank_callpaths[i] is the callpath
    rank i presents at marker i (all ranks present the same list unless a
    dict {rank: value} is given)."""

    async def main(ctx):
        tracker = PhaseTracker()
        out = []
        for step in per_rank_callpaths:
            cp = step[ctx.rank] if isinstance(step, dict) else step
            decision = await tracker.decide(ctx.comm, cp)
            out.append(decision)
        return out

    return run_spmd(main, 4, config=SimConfig(network=ZERO_COST)).results


class TestPhaseTracker:
    def test_first_marker_always_at(self):
        decisions = run_phase_sequence([100])[0]
        assert decisions[0].state is MarkerState.AT
        assert not decisions[0].do_cluster

    def test_stable_pattern_reaches_c_then_l(self):
        # same callpath forever: AT, C, L, L, L...
        decisions = run_phase_sequence([7, 7, 7, 7, 7])[0]
        states = [d.state for d in decisions]
        assert states == [
            MarkerState.AT,
            MarkerState.C,
            MarkerState.L,
            MarkerState.L,
            MarkerState.L,
        ]
        assert decisions[1].do_cluster and decisions[1].do_merge
        assert not decisions[2].do_merge  # steady lead phase: no work

    def test_phase_change_during_lead_flushes(self):
        decisions = run_phase_sequence([7, 7, 7, 9, 9, 9])[0]
        states = [d.state for d in decisions]
        # AT, C, L(steady), L(flush), then 9 stabilizes: C? -> after flush
        # Algorithm 1 needs one mismatch to re-arm Re-Clustering.
        assert states[:4] == [
            MarkerState.AT,
            MarkerState.C,
            MarkerState.L,
            MarkerState.L,
        ]
        assert decisions[3].do_merge and decisions[3].phase_changed

    def test_mismatch_right_after_c_returns_to_at(self):
        # 7,7 -> C; 9 arrives before the lead flag was ever set, so there is
        # nothing to flush: straight back to AT with Re-Clustering re-armed.
        decisions = run_phase_sequence([7, 7, 9, 11, 11, 11])[0]
        states = [d.state for d in decisions]
        assert states == [
            MarkerState.AT,
            MarkerState.C,
            MarkerState.AT,
            MarkerState.AT,
            MarkerState.C,
            MarkerState.L,
        ]
        assert not decisions[2].do_merge
        assert decisions[4].do_cluster

    def test_flush_rearms_reclustering(self):
        # Figure 2 semantics: after a lead-phase flush the next stable
        # pattern re-clusters.
        decisions = run_phase_sequence([7, 7, 7, 9, 9, 9])[0]
        states = [d.state for d in decisions]
        assert states == [
            MarkerState.AT,
            MarkerState.C,
            MarkerState.L,  # steady lead phase, lead flag set
            MarkerState.L,  # mismatch -> flush
            MarkerState.C,  # 9 stabilized -> re-cluster
            MarkerState.L,
        ]
        assert decisions[3].do_merge and decisions[3].phase_changed
        assert decisions[4].do_cluster

    def test_alternating_callpaths_never_cluster(self):
        decisions = run_phase_sequence([1, 2, 1, 2, 1, 2])[0]
        assert all(d.state is MarkerState.AT for d in decisions)
        assert not any(d.do_cluster for d in decisions)

    def test_single_rank_mismatch_blocks_clustering(self):
        # rank 3 sees a different callpath on marker 2: the collective vote
        # must keep EVERYONE in AT.
        steps = [5, {0: 5, 1: 5, 2: 5, 3: 6}, 5]
        per_rank = run_phase_sequence(steps)
        for decisions in per_rank:
            assert decisions[1].state is MarkerState.AT

    def test_all_ranks_agree_on_every_decision(self):
        steps = [1, 1, 1, 2, 2, 2, 3, 3]
        per_rank = run_phase_sequence(steps)
        for i in range(len(steps)):
            states = {d[i].state for d in per_rank}
            assert len(states) == 1

    def test_force_final(self):
        t = PhaseTracker()
        d = t.force_final()
        assert d.state is MarkerState.F
        assert d.do_cluster and d.do_merge

    def test_vote_count(self):
        async def main(ctx):
            t = PhaseTracker()
            for cp in [1, 1, 1]:
                await t.decide(ctx.comm, cp)
            return t.votes

        res = run_spmd(main, 2, config=SimConfig(network=ZERO_COST))
        # first marker records baseline without voting
        assert res.results == [2, 2]
