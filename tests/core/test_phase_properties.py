"""Property-based tests on the transition graph over random phase streams."""

from hypothesis import given, settings, strategies as st

from repro.core import MarkerState, PhaseTracker
from repro.simmpi import SimConfig, ZERO_COST, run_spmd

callpath_streams = st.lists(st.integers(1, 4), min_size=1, max_size=30)


def drive(stream, nprocs=3):
    async def main(ctx):
        tracker = PhaseTracker()
        return [await tracker.decide(ctx.comm, cp) for cp in stream]

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results


class TestTransitionInvariants:
    @given(callpath_streams)
    @settings(max_examples=60, deadline=None)
    def test_first_decision_is_always_at(self, stream):
        decisions = drive(stream)[0]
        assert decisions[0].state is MarkerState.AT
        assert not decisions[0].do_cluster and not decisions[0].do_merge

    @given(callpath_streams)
    @settings(max_examples=60, deadline=None)
    def test_all_ranks_always_agree(self, stream):
        per_rank = drive(stream)
        for step in range(len(stream)):
            states = {d[step].state for d in per_rank}
            merges = {d[step].do_merge for d in per_rank}
            clusters = {d[step].do_cluster for d in per_rank}
            assert len(states) == len(merges) == len(clusters) == 1

    @given(callpath_streams)
    @settings(max_examples=60, deadline=None)
    def test_cluster_implies_merge_and_c_state(self, stream):
        for d in drive(stream)[0]:
            if d.do_cluster:
                assert d.state is MarkerState.C
                assert d.do_merge

    @given(callpath_streams)
    @settings(max_examples=60, deadline=None)
    def test_c_requires_two_consecutive_matches(self, stream):
        """C can only fire when the current callpath equals the previous
        one (the vote saw zero mismatches)."""
        decisions = drive(stream)[0]
        for i, d in enumerate(decisions):
            if d.state is MarkerState.C:
                assert i >= 1
                assert stream[i] == stream[i - 1]

    @given(callpath_streams)
    @settings(max_examples=60, deadline=None)
    def test_flush_only_from_lead_phase(self, stream):
        """A merge outside C (an L flush) only happens after a steady lead
        phase was established."""
        decisions = drive(stream)[0]
        in_lead = False
        for d in decisions:
            if d.state is MarkerState.L and d.do_merge:
                assert in_lead
            if d.state is MarkerState.L and not d.do_merge:
                in_lead = True
            elif d.state is MarkerState.C:
                in_lead = False  # lead flag not set yet at C
            elif d.state is MarkerState.AT:
                in_lead = False

    @given(callpath_streams)
    @settings(max_examples=60, deadline=None)
    def test_constant_stream_reaches_steady_lead(self, stream):
        constant = [stream[0]] * max(len(stream), 5)
        decisions = drive(constant)[0]
        states = [d.state for d in decisions]
        assert states[1] is MarkerState.C
        assert all(s is MarkerState.L for s in states[2:])

    @given(callpath_streams)
    @settings(max_examples=40, deadline=None)
    def test_tracker_deterministic(self, stream):
        a = [d.state for d in drive(stream)[0]]
        b = [d.state for d in drive(stream)[0]]
        assert a == b
