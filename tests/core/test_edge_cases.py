"""Chameleon edge cases: degenerate sizes, frequencies, algorithms."""

import pytest

from repro.core import (
    AcurdionTracer,
    ChameleonConfig,
    ChameleonTracer,
    SignatureAccumulator,
)
from repro.scalatrace import Trace
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def run_with(prog, nprocs, config):
    async def main(ctx):
        tracer = ChameleonTracer(ctx, config)
        await prog(ctx, tracer)
        trace = await tracer.finalize()
        return {"trace": trace, "cstats": tracer.cstats}

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results


async def uniform(ctx, tr, steps=6):
    for _ in range(steps):
        with ctx.frame("k"):
            await tr.allreduce(1.0, size=8)
        await tr.marker()


class TestDegenerateConfigs:
    def test_single_rank(self):
        res = run_with(uniform, 1, ChameleonConfig(k=1))
        trace = res[0]["trace"]
        assert isinstance(trace, Trace)
        assert trace.expanded_count() == 6

    def test_two_ranks(self):
        res = run_with(uniform, 2, ChameleonConfig(k=1))
        assert res[0]["trace"].expanded_count() == 6

    def test_frequency_larger_than_iterations(self):
        cfg = ChameleonConfig(k=2, call_frequency=100)
        res = run_with(uniform, 4, cfg)
        cs = res[0]["cstats"]
        assert cs.effective_calls == 0
        # finalize still produces the complete trace
        assert res[0]["trace"].expanded_count() == 6

    def test_k_one_single_lead(self):
        res = run_with(uniform, 8, ChameleonConfig(k=1))
        trace = res[0]["trace"]
        leaf = next(trace.leaves())
        assert leaf.record.participants.count == 8

    def test_k_larger_than_p(self):
        res = run_with(uniform, 4, ChameleonConfig(k=64))
        assert res[0]["trace"].expanded_count() == 6

    @pytest.mark.parametrize("algo", ["kmedoids", "kfarthest", "krandom", "hierarchical"])
    def test_all_clustering_algorithms_end_to_end(self, algo):
        async def mixed(ctx, tr):
            for _ in range(6):
                with ctx.frame("common"):
                    await tr.allreduce(1.0, size=8)
                if ctx.rank % 2 == 0:
                    with ctx.frame("even"):
                        peer = ctx.rank + 1
                        if peer < ctx.size:
                            await tr.send(peer, None, size=16)
                else:
                    await tr.recv(ctx.rank - 1)
                await tr.marker()

        res = run_with(mixed, 8, ChameleonConfig(k=2, algorithm=algo))
        trace = res[0]["trace"]
        covered = set()
        for leaf in trace.leaves():
            covered.update(leaf.record.participants.ranks())
        assert covered == set(range(8))

    def test_invalid_config_values(self):
        with pytest.raises(ValueError):
            ChameleonConfig(k=0)
        with pytest.raises(ValueError):
            ChameleonConfig(call_frequency=0)
        with pytest.raises(ValueError):
            ChameleonConfig(algorithm="xmeans")
        with pytest.raises(ValueError):
            ChameleonConfig(tree_arity=1)
        with pytest.raises(ValueError):
            ChameleonConfig(signature_filter="fancy")

    def test_tree_arity_four(self):
        res = run_with(uniform, 9, ChameleonConfig(k=2, tree_arity=4))
        assert res[0]["trace"].expanded_count() == 6


class TestSignatureFilterModes:
    def test_dedup_invariant_to_repetition_count(self):
        a = SignatureAccumulator(mode="dedup")
        b = SignatureAccumulator(mode="dedup")
        for _ in range(3):
            a.observe(11)
            a.observe(22)
        for _ in range(7):  # different trip count, same sites
            b.observe(11)
            b.observe(22)
        assert a.snapshot().callpath == b.snapshot().callpath

    def test_sequence_sensitive_to_repetition_count(self):
        a = SignatureAccumulator(mode="sequence")
        b = SignatureAccumulator(mode="sequence")
        for _ in range(3):
            a.observe(11)
        for _ in range(7):
            b.observe(11)
        assert a.snapshot().callpath != b.snapshot().callpath

    def test_dedup_detects_new_sites(self):
        a = SignatureAccumulator(mode="dedup")
        a.observe(11)
        first = a.snapshot().callpath
        a.observe(99)
        assert a.snapshot().callpath != first

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SignatureAccumulator(mode="bogus")


class TestAcurdionEdgeCases:
    def test_single_rank(self):
        async def main(ctx):
            tracer = AcurdionTracer(ctx, ChameleonConfig(k=1))
            with ctx.frame("x"):
                await tracer.allreduce(1.0)
            return await tracer.finalize()

        res = run_spmd(main, 1, config=SimConfig(network=ZERO_COST))
        assert res.results[0].expanded_count() == 1

    def test_marker_is_noop(self):
        async def main(ctx):
            tracer = AcurdionTracer(ctx, ChameleonConfig(k=1))
            assert await tracer.marker() is None
            with ctx.frame("x"):
                await tracer.allreduce(1.0)
            return await tracer.finalize()

        res = run_spmd(main, 2, config=SimConfig(network=ZERO_COST))
        assert res.results[0] is not None


class TestLeadPhaseDataIntegrity:
    def test_no_events_lost_across_flushes(self):
        """Every traced MPI call appears in the online trace exactly once,
        across AT / C / lead phases and the finalize flush."""
        steps = 9

        async def prog(ctx, tr):
            await uniform(ctx, tr, steps=steps)

        res = run_with(prog, 8, ChameleonConfig(k=1))
        trace = res[0]["trace"]
        # one allreduce per step, all ranks merged into one record stream
        assert trace.expanded_count() == steps
        # the single lead's own observations stand in for the whole cluster
        # ("all other parameters are taken verbatim from the lead process"),
        # so the histogram mass is one observation per step, not one per
        # (rank, step) pair
        leaf_mass = sum(l.record.dhist.total for l in trace.leaves())
        assert leaf_mass == steps
        # but the participants cover every rank
        covered = set()
        for l in trace.leaves():
            covered.update(l.record.participants.ranks())
        assert covered == set(range(8))

    def test_phase_change_preserves_event_mass(self):
        async def prog(ctx, tr):
            for _ in range(4):
                with ctx.frame("a"):
                    await tr.allreduce(1.0, size=8)
                await tr.marker()
            for _ in range(4):
                with ctx.frame("b"):
                    await tr.barrier()
                await tr.marker()

        res = run_with(prog, 4, ChameleonConfig(k=2))
        trace = res[0]["trace"]
        # every timestep of both phases survives the flushes exactly once
        assert trace.expanded_count() == 8
        covered = set()
        for l in trace.leaves():
            covered.update(l.record.participants.ranks())
        assert covered == set(range(4))
