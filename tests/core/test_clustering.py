"""Algorithm 2: cluster sets, Top-K selection, coverage invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClusterInfo,
    ClusterSet,
    distance,
    find_top_k,
    hierarchical,
    k_farthest,
    k_medoids,
    k_random,
)
from repro.scalatrace import RankSet, WorkMeter


def cluster(cp, src, dest, ranks):
    ranks = list(ranks)
    return ClusterInfo((cp, src, dest), RankSet(ranks), min(ranks))


class TestDistance:
    def test_zero_for_identical(self):
        a = cluster(1, 100, 200, [0])
        b = cluster(1, 100, 200, [1])
        assert distance(a, b) == 0.0

    def test_symmetric(self):
        a = cluster(1, 100, 200, [0])
        b = cluster(1, 500, 80, [1])
        assert distance(a, b) == distance(b, a) == 400.0 + 120.0

    def test_meter_counts(self):
        m = WorkMeter()
        distance(cluster(1, 0, 0, [0]), cluster(1, 1, 1, [1]), m)
        assert m.comparisons == 1


class TestSelectors:
    def make_line(self, n):
        # clusters spaced on a line in SRC coordinate
        return [cluster(1, i * 100, 0, [i]) for i in range(n)]

    def test_k_ge_n_returns_all(self):
        cl = self.make_line(3)
        for fn in (k_farthest, k_medoids):
            assert len(fn(cl, 5)) == 3
        assert len(k_random(cl, 5, seed=1)) == 3

    def test_k_farthest_spreads(self):
        cl = self.make_line(10)
        sel = k_farthest(cl, 3)
        srcs = sorted(c.signature[1] for c in sel)
        # maximin on a line picks both extremes
        assert srcs[0] == 0 or srcs[0] == 100  # seed is the largest/first
        assert 900 in [c.signature[1] for c in sel]

    def test_k_medoids_picks_k(self):
        sel = k_medoids(self.make_line(9), 3)
        assert len(sel) == 3
        assert len({c.lead for c in sel}) == 3

    def test_hierarchical_merges_closest(self):
        # two tight groups far apart: hierarchical with k=2 must split them
        tight_a = [cluster(1, i, 0, [i]) for i in range(3)]          # src 0..2
        tight_b = [cluster(1, 10_000 + i, 0, [i + 3]) for i in range(3)]
        sel = hierarchical(tight_a + tight_b, 2)
        assert len(sel) == 2
        srcs = sorted(c.signature[1] for c in sel)
        assert srcs[0] < 100 and srcs[1] >= 10_000
        covered = set()
        for c in sel:
            covered.update(c.members.ranks())
        assert covered == set(range(6))

    def test_hierarchical_k_ge_n(self):
        cl = self.make_line(3)
        assert len(hierarchical(cl, 5)) == 3

    def test_k_random_deterministic_per_seed(self):
        cl = self.make_line(8)
        a = [c.lead for c in k_random(cl, 3, seed=42)]
        b = [c.lead for c in k_random(cl, 3, seed=42)]
        c2 = [c.lead for c in k_random(cl, 3, seed=43)]
        assert a == b
        assert a != c2 or True  # different seed may coincide, no assert

    def test_find_top_k_absorbs_losers(self):
        cl = self.make_line(6)
        sel = find_top_k(cl, 2, "kfarthest")
        covered = set()
        for c in sel:
            covered.update(c.members.ranks())
        assert covered == set(range(6))

    def test_find_top_k_invalid(self):
        with pytest.raises(ValueError):
            find_top_k(self.make_line(3), 0)
        with pytest.raises(ValueError):
            find_top_k(self.make_line(3), 2, algorithm="bogus")

    @given(
        st.integers(1, 6),
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 10**6), st.integers(0, 10**6)),
            min_size=1,
            max_size=20,
        ),
        st.sampled_from(["kfarthest", "kmedoids", "krandom", "hierarchical"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_coverage_invariant_all_algorithms(self, k, triples, algo):
        """No rank is ever lost by Top-K selection."""
        clusters = [
            cluster(cp, src, dest, [i]) for i, (cp, src, dest) in enumerate(triples)
        ]
        sel = find_top_k(clusters, k, algo, seed=7)
        covered = set()
        for c in sel:
            covered.update(c.members.ranks())
        assert covered == set(range(len(triples)))
        assert len(sel) <= max(k, len(triples)) and len(sel) >= 1


class TestClusterSet:
    def test_local(self):
        cs = ClusterSet.local((1, 2, 3), rank=5)
        assert len(cs) == 1
        assert cs.leads() == [5]
        assert cs.covered_ranks() == (5,)

    def test_merge_coalesces_identical_triples(self):
        a = ClusterSet.local((1, 2, 3), 0)
        b = ClusterSet.local((1, 2, 3), 1)
        a.merge(b)
        assert len(a) == 1
        assert a.covered_ranks() == (0, 1)
        assert a.leads() == [0]

    def test_merge_keeps_distinct_triples(self):
        a = ClusterSet.local((1, 2, 3), 0)
        b = ClusterSet.local((9, 2, 3), 1)
        a.merge(b)
        assert len(a) == 2
        assert a.num_callpaths == 2

    def test_prune_keeps_every_callpath(self):
        cs = ClusterSet()
        for i in range(12):
            cs.merge(ClusterSet.local((i % 4, i * 1000, 0), i))
        cs.prune(k=2, algorithm="kfarthest")
        # 4 callpaths > k=2: dynamic K keeps one per callpath
        assert cs.num_callpaths == 4
        assert len(cs) == 4
        assert cs.covered_ranks() == tuple(range(12))

    def test_prune_respects_k_within_callpath(self):
        cs = ClusterSet()
        for i in range(10):
            cs.merge(ClusterSet.local((1, i * 1000, 0), i))
        cs.prune(k=3, algorithm="kfarthest")
        assert len(cs) == 3
        assert cs.covered_ranks() == tuple(range(10))

    def test_find_cluster_of(self):
        cs = ClusterSet.local((1, 2, 3), 0)
        cs.merge(ClusterSet.local((1, 2, 3), 4))
        cs.merge(ClusterSet.local((2, 0, 0), 9))
        assert cs.find_cluster_of(4).signature == (1, 2, 3)
        assert cs.find_cluster_of(9).signature == (2, 0, 0)
        assert cs.find_cluster_of(77) is None

    def test_deterministic_order(self):
        cs = ClusterSet()
        for sig in [(3, 0, 0), (1, 5, 0), (1, 2, 0)]:
            cs.merge(ClusterSet.local(sig, sig[0] * 10 + sig[1]))
        sigs = [c.signature for c in cs.all_clusters()]
        assert sigs == sorted(sigs)

    def test_size_bytes_and_hint(self):
        cs = ClusterSet.local((1, 2, 3), 0)
        assert cs.size_bytes() > 0
        assert cs.nbytes_hint() == cs.size_bytes()

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=64), st.integers(1, 9))
    @settings(max_examples=50, deadline=None)
    def test_tree_reduction_coverage(self, callpaths, k):
        """Simulate the tree reduction: merging + pruning in any grouping
        never loses a rank (paper: Chameleon misses no MPI event)."""
        sets = [
            ClusterSet.local((cp, cp * 17, cp * 31), rank)
            for rank, cp in enumerate(callpaths)
        ]
        # pairwise tree reduction
        while len(sets) > 1:
            merged = []
            for i in range(0, len(sets) - 1, 2):
                a, b = sets[i], sets[i + 1]
                a.merge(b)
                if len(a) > 2 * k + 1:
                    a.prune(k)
                merged.append(a)
            if len(sets) % 2:
                merged.append(sets[-1])
            sets = merged
        root = sets[0]
        root.prune(k)
        assert root.covered_ranks() == tuple(range(len(callpaths)))
        # at least one lead per callpath group
        assert root.num_callpaths == len(set(callpaths))
