"""End-to-end Chameleon tracer behaviour on the simulated runtime."""

import pytest

from repro.core import (
    AcurdionTracer,
    ChameleonConfig,
    ChameleonTracer,
    MarkerState,
)
from repro.scalatrace import Op, Trace
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def run_chameleon(prog, nprocs, config=None, network=ZERO_COST):
    async def main(ctx):
        tracer = ChameleonTracer(ctx, config or ChameleonConfig(k=4))
        await prog(ctx, tracer)
        trace = await tracer.finalize()
        return {
            "trace": trace,
            "cstats": tracer.cstats,
            "stats": tracer.stats,
            "tracing": tracer.tracing,
            "clock": ctx.clock,
        }

    return run_spmd(main, nprocs, config=SimConfig(network=network))


async def stencil_step(ctx, tr, tag=0):
    """One timestep of a 1-D stencil: exchange with +/-1 neighbours."""
    with ctx.frame("stencil"):
        if ctx.rank + 1 < ctx.size:
            await tr.send(ctx.rank + 1, None, tag=tag, size=64)
        if ctx.rank > 0:
            await tr.recv(ctx.rank - 1, tag=tag)
        await tr.allreduce(1.0)


class TestStatesOverRun:
    def test_steady_workload_reaches_lead_phase(self):
        async def prog(ctx, tr):
            for _ in range(6):
                await stencil_step(ctx, tr)
                await tr.marker()

        res = run_chameleon(prog, 8)
        cs = res.results[0]["cstats"]
        assert cs.marker_invocations == 6
        assert cs.effective_calls == 6
        # AT (baseline), C (cluster), then steady L
        assert cs.state_counts["all-tracing"] == 1
        assert cs.state_counts["clustering"] == 1
        assert cs.state_counts["lead"] == 4
        assert cs.reclusterings >= 1

    def test_call_frequency_gates_markers(self):
        async def prog(ctx, tr):
            for _ in range(12):
                await stencil_step(ctx, tr)
                await tr.marker()

        res = run_chameleon(prog, 4, config=ChameleonConfig(k=4, call_frequency=4))
        cs = res.results[0]["cstats"]
        assert cs.marker_invocations == 12
        assert cs.effective_calls == 3

    def test_all_ranks_agree_on_states(self):
        async def prog(ctx, tr):
            for _ in range(5):
                await stencil_step(ctx, tr)
                await tr.marker()

        res = run_chameleon(prog, 6)
        counts = [r["cstats"].state_counts for r in res.results]
        assert all(c == counts[0] for c in counts)

    def test_phase_change_triggers_flush_and_recluster(self):
        async def prog(ctx, tr):
            for _ in range(4):  # phase 1: stencil
                await stencil_step(ctx, tr)
                await tr.marker()
            for _ in range(4):  # phase 2: pure collectives
                with ctx.frame("collective-phase"):
                    await tr.allreduce(2.0)
                    await tr.barrier()
                await tr.marker()

        res = run_chameleon(prog, 8)
        cs = res.results[0]["cstats"]
        # phase 1: AT C L L; phase 2: flush(L) AT C L
        assert cs.state_counts["clustering"] == 2
        assert cs.reclusterings >= 2  # includes finalize


class TestLeadBehaviour:
    def test_non_leads_stop_tracing_in_lead_phase(self):
        async def prog(ctx, tr):
            for _ in range(6):
                with ctx.frame("uniform"):
                    await tr.allreduce(1.0)
                await tr.marker()

        res = run_chameleon(prog, 8, config=ChameleonConfig(k=1))
        tracing_flags = [r["tracing"] for r in res.results]
        # identical signatures -> one cluster -> exactly one lead still traced
        assert sum(tracing_flags) == 1
        skipped = [r["stats"].events_skipped for r in res.results]
        assert sum(1 for s in skipped if s > 0) == 7

    def test_non_lead_space_is_zero_in_lead_state(self):
        async def prog(ctx, tr):
            for _ in range(6):
                with ctx.frame("uniform"):
                    await tr.allreduce(1.0)
                await tr.marker()

        res = run_chameleon(prog, 8, config=ChameleonConfig(k=1))
        # find a non-lead rank
        non_leads = [r for r in res.results if not r["tracing"]]
        assert non_leads
        for r in non_leads:
            lead_samples = [
                b for s, b in r["cstats"].space_samples if s == "lead"
            ]
            assert lead_samples and all(b == 0 for b in lead_samples)

    def test_leads_cover_every_callpath_cluster(self):
        async def prog(ctx, tr):
            # two behaviour groups: even ranks also do a send
            for _ in range(6):
                with ctx.frame("common"):
                    await tr.allreduce(1.0)
                if ctx.rank % 2 == 0:
                    with ctx.frame("extra"):
                        peer = ctx.rank + 1 if ctx.rank + 1 < ctx.size else 0
                        await tr.send(peer, None, size=8)
                        _ = None
                if ctx.rank % 2 == 1:
                    src = ctx.rank - 1
                    await tr.recv(src)
                await tr.marker()

        res = run_chameleon(prog, 8, config=ChameleonConfig(k=4))
        cs = res.results[0]["cstats"]
        assert cs.num_callpaths >= 2
        assert cs.k_used >= cs.num_callpaths


class TestOnlineTrace:
    def test_online_trace_on_rank0_only(self):
        async def prog(ctx, tr):
            for _ in range(5):
                await stencil_step(ctx, tr)
                await tr.marker()

        res = run_chameleon(prog, 8)
        assert isinstance(res.results[0]["trace"], Trace)
        assert all(r["trace"] is None for r in res.results[1:])

    def test_online_trace_covers_all_ranks(self):
        async def prog(ctx, tr):
            for _ in range(5):
                with ctx.frame("uniform"):
                    await tr.allreduce(1.0)
                await tr.marker()

        res = run_chameleon(prog, 8, config=ChameleonConfig(k=2))
        trace = res.results[0]["trace"]
        leaf = next(trace.leaves())
        assert leaf.record.participants.count == 8

    def test_online_trace_event_ops(self):
        async def prog(ctx, tr):
            for _ in range(5):
                await stencil_step(ctx, tr)
                await tr.marker()

        res = run_chameleon(prog, 8)
        trace = res.results[0]["trace"]
        ops = {l.record.op for l in trace.leaves()}
        assert Op.ALLREDUCE in ops
        assert Op.SEND in ops and Op.RECV in ops

    def test_online_trace_grows_incrementally(self):
        """After a phase change the flush merges the old phase into the
        online trace before finalize."""

        async def prog(ctx, tr):
            for _ in range(4):
                await stencil_step(ctx, tr)
                await tr.marker()
            for _ in range(4):
                with ctx.frame("phase2"):
                    await tr.barrier()
                await tr.marker()

        res = run_chameleon(prog, 4)
        trace = res.results[0]["trace"]
        ops = {l.record.op for l in trace.leaves()}
        assert Op.BARRIER in ops and Op.ALLREDUCE in ops

    def test_expanded_event_counts_reasonable(self):
        steps = 6

        async def prog(ctx, tr):
            for _ in range(steps):
                with ctx.frame("uniform"):
                    await tr.allreduce(1.0)
                await tr.marker()

        res = run_chameleon(prog, 4, config=ChameleonConfig(k=1))
        trace = res.results[0]["trace"]
        # the allreduce appears once per timestep in the merged trace
        assert trace.expanded_count() == steps


class TestAcurdion:
    def test_acurdion_produces_global_trace(self):
        async def main(ctx):
            tracer = AcurdionTracer(ctx, ChameleonConfig(k=2))
            for _ in range(5):
                with ctx.frame("uniform"):
                    await tracer.allreduce(1.0)
                await tracer.marker()  # no-op for ACURDION
            trace = await tracer.finalize()
            return {"trace": trace, "bytes": tracer.current_bytes(),
                    "stats": tracer.stats}

        res = run_spmd(main, 8, config=SimConfig(network=ZERO_COST))
        trace = res.results[0]["trace"]
        assert trace is not None
        leaf = next(trace.leaves())
        assert leaf.record.participants.count == 8

    def test_acurdion_all_ranks_allocate(self):
        async def main(ctx):
            tracer = AcurdionTracer(ctx, ChameleonConfig(k=1))
            for _ in range(5):
                with ctx.frame("uniform"):
                    await tracer.allreduce(1.0)
            peak = tracer.stats.peak_bytes
            await tracer.finalize()
            return peak

        res = run_spmd(main, 8, config=SimConfig(network=ZERO_COST))
        # no lead phase: every rank paid trace memory
        assert all(p > 0 for p in res.results)

    def test_acurdion_cheaper_in_time_than_chameleon_markers(self):
        """Table III's direction: with max marker calls Chameleon's online
        machinery costs more virtual time than ACURDION's single pass."""
        steps = 12

        async def cham(ctx):
            tr = ChameleonTracer(ctx, ChameleonConfig(k=2))
            for _ in range(steps):
                with ctx.frame("u"):
                    await tr.allreduce(1.0)
                await tr.marker()
            await tr.finalize()
            return ctx.clock

        async def acur(ctx):
            tr = AcurdionTracer(ctx, ChameleonConfig(k=2))
            for _ in range(steps):
                with ctx.frame("u"):
                    await tr.allreduce(1.0)
            await tr.finalize()
            return ctx.clock

        t_cham = max(run_spmd(cham, 8).results)
        t_acur = max(run_spmd(acur, 8).results)
        assert t_acur < t_cham
