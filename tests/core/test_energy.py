"""DVFS energy model (the paper's future-work proposal)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ChameleonConfig,
    ChameleonTracer,
    EnergyReport,
    PowerModel,
    energy_report,
    rank_energy,
    run_energy,
)
from repro.simmpi import run_spmd
from repro.workloads import NullTracer


class TestPowerModel:
    def test_default_ordering(self):
        p = PowerModel()
        assert p.dvfs_watts < p.idle_watts < p.busy_watts

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(busy_watts=5.0, idle_watts=10.0)
        with pytest.raises(ValueError):
            PowerModel(dvfs_watts=-1.0)


class TestRankEnergy:
    def test_fully_busy(self):
        p = PowerModel(busy_watts=10, idle_watts=5, dvfs_watts=1)
        assert rank_energy(2.0, 2.0, p, scaled=False) == pytest.approx(20.0)

    def test_idle_slack(self):
        p = PowerModel(busy_watts=10, idle_watts=5, dvfs_watts=1)
        assert rank_energy(1.0, 3.0, p, scaled=False) == pytest.approx(10 + 10)

    def test_dvfs_slack(self):
        p = PowerModel(busy_watts=10, idle_watts=5, dvfs_watts=1)
        assert rank_energy(1.0, 3.0, p, scaled=True) == pytest.approx(10 + 2)

    def test_busy_clamped_to_makespan(self):
        p = PowerModel(busy_watts=10, idle_watts=5, dvfs_watts=1)
        assert rank_energy(5.0, 2.0, p, scaled=False) == pytest.approx(20.0)

    @given(
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
    )
    def test_dvfs_never_costs_more(self, busy, extra):
        p = PowerModel()
        makespan = busy + extra
        assert rank_energy(busy, makespan, p, scaled=True) <= rank_energy(
            busy, makespan, p, scaled=False
        ) + 1e-9


class TestRunEnergy:
    def test_empty(self):
        assert run_energy([], 0.0, PowerModel()) == 0.0

    def test_uniform_ranks(self):
        p = PowerModel(busy_watts=10, idle_watts=5, dvfs_watts=1)
        assert run_energy([1.0, 1.0], 1.0, p) == pytest.approx(20.0)

    def test_dvfs_subset(self):
        p = PowerModel(busy_watts=10, idle_watts=5, dvfs_watts=1)
        # rank 1 idle for 1s: idle 5J vs dvfs 1J
        base = run_energy([2.0, 1.0], 2.0, p)
        scaled = run_energy([2.0, 1.0], 2.0, p, dvfs_ranks={1})
        assert base - scaled == pytest.approx(4.0)


class TestEnergyReportOnRuns:
    def _run(self, k):
        async def traced(ctx):
            tracer = ChameleonTracer(ctx, ChameleonConfig(k=k))
            for _ in range(10):
                with ctx.frame("kern"):
                    ctx.compute(0.01)
                    await tracer.allreduce(1.0, size=8)
                await tracer.marker()
            await tracer.finalize()
            return tracer.tracing

        async def app(ctx):
            tr = NullTracer(ctx)
            for _ in range(10):
                with ctx.frame("kern"):
                    ctx.compute(0.01)
                    await tr.allreduce(1.0, size=8)
                await tr.marker()
            return None

        t = run_spmd(traced, 8)
        a = run_spmd(app, 8)
        leads = {r for r, is_lead in enumerate(t.results) if is_lead}
        return energy_report(
            a.busy_times, a.max_time, t.busy_times, t.max_time, leads
        )

    def test_dvfs_saves_energy_with_single_lead(self):
        report = self._run(k=1)
        assert isinstance(report, EnergyReport)
        assert report.traced_dvfs_joules < report.traced_joules
        assert 0 < report.dvfs_savings < 1

    def test_tracing_energy_overhead_small(self):
        report = self._run(k=1)
        assert 0 <= report.tracing_energy_overhead < 0.5

    def test_report_zero_division_guards(self):
        r = EnergyReport(0.0, 0.0, 0.0)
        assert r.tracing_energy_overhead == 0.0
        assert r.dvfs_savings == 0.0
