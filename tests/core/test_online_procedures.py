"""Algorithm 3's tree procedures, exercised directly."""

import pytest

from repro.core import (
    ChameleonConfig,
    IntervalSignatures,
    cluster_over_tree,
    merge_lead_traces,
    replace_participants,
)
from repro.scalatrace import (
    EndpointStat,
    EventNode,
    EventRecord,
    Op,
    RankSet,
    ScalaTraceTracer,
    Trace,
)
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def run_ranks(prog, nprocs):
    async def main(ctx):
        tracer = ScalaTraceTracer(ctx)
        return await prog(ctx, tracer)

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results


class TestClusterOverTree:
    def test_identical_signatures_one_cluster(self):
        async def prog(ctx, tr):
            sigs = IntervalSignatures(callpath=7, src=100, dest=200)
            topk = await cluster_over_tree(tr, sigs, ChameleonConfig(k=3))
            return topk

        results = run_ranks(prog, 8)
        for topk in results:
            assert len(topk) == 1
            assert topk.covered_ranks() == tuple(range(8))
            assert topk.leads() == [0]

    def test_per_rank_signatures_cluster_by_group(self):
        async def prog(ctx, tr):
            group = ctx.rank % 2
            sigs = IntervalSignatures(
                callpath=group + 1, src=group * 1000, dest=0
            )
            topk = await cluster_over_tree(tr, sigs, ChameleonConfig(k=4))
            return topk

        results = run_ranks(prog, 8)
        topk = results[0]
        assert topk.num_callpaths == 2
        assert topk.covered_ranks() == tuple(range(8))
        # all ranks received identical broadcast results
        assert all(t.leads() == topk.leads() for t in results)

    def test_pruning_under_budget(self):
        async def prog(ctx, tr):
            # every rank a distinct src signature in ONE callpath group
            sigs = IntervalSignatures(callpath=1, src=ctx.rank * 999, dest=0)
            topk = await cluster_over_tree(tr, sigs, ChameleonConfig(k=2))
            return topk

        topk = run_ranks(prog, 12)[0]
        assert len(topk) <= 2
        assert topk.covered_ranks() == tuple(range(12))


def _leaf(op, rank, dest_abs=None):
    rec = EventRecord(
        op=op,
        stack_sig=0xABC,
        comm_id=1,
        dest=None if dest_abs is None else EndpointStat.of(dest_abs, rank),
        participants=RankSet.single(rank),
    )
    rec.count.add(8)
    rec.tag.add(0)
    rec.dhist.record(0.0)
    return EventNode(rec)


class TestReplaceParticipants:
    def test_homogeneous_keeps_rel(self):
        node = _leaf(Op.SEND, rank=3, dest_abs=4)
        replace_participants([node], RankSet([3, 4, 5]))
        assert node.record.participants.ranks() == (3, 4, 5)
        assert node.record.dest.rel == 1  # untouched

    def test_heterogeneous_prefers_abs(self):
        node = _leaf(Op.SEND, rank=3, dest_abs=0)
        replace_participants(
            [node], RankSet([1, 2, 3]), dest_homogeneous=False
        )
        assert node.record.dest.rel is None
        assert node.record.dest.abs_ == 0

    def test_heterogeneous_without_abs_keeps_rel(self):
        node = _leaf(Op.SEND, rank=3, dest_abs=4)
        node.record.dest.abs_ = None  # abs already invalidated
        replace_participants(
            [node], RankSet([1, 2, 3]), dest_homogeneous=False
        )
        assert node.record.dest.rel == 1  # nothing better available


class TestMergeLeadTraces:
    def test_merge_into_online_at_rank0(self):
        async def prog(ctx, tr):
            sigs = IntervalSignatures(callpath=1, src=0, dest=0)
            config = ChameleonConfig(k=2)
            with ctx.frame("k"):
                await tr.allreduce(0.0, size=8)
            topk = await cluster_over_tree(tr, sigs, config)
            online = Trace(nprocs=ctx.size) if ctx.rank == 0 else None
            merged = await merge_lead_traces(tr, topk, online, config.window)
            return merged

        results = run_ranks(prog, 6)
        online = results[0]
        assert online is not None
        assert all(r is None for r in results[1:])
        leaf = next(online.leaves())
        assert leaf.record.participants.count == 6

    def test_online_grows_across_two_merges(self):
        async def prog(ctx, tr):
            config = ChameleonConfig(k=1)
            online = Trace(nprocs=ctx.size) if ctx.rank == 0 else None
            for phase in ("a", "b"):
                with ctx.frame(f"phase_{phase}"):
                    await tr.allreduce(0.0, size=8)
                sigs = IntervalSignatures(callpath=hash(phase) & 0xFF, src=0,
                                          dest=0)
                topk = await cluster_over_tree(tr, sigs, config)
                merged = await merge_lead_traces(tr, topk, online,
                                                 config.window)
                if ctx.rank == 0:
                    online = merged
            return online

        online = run_ranks(prog, 4)[0]
        assert online.leaf_count() == 2  # one per phase
        assert online.expanded_count() == 2
