"""Moderate-scale smoke: the full pipeline at P=100 within a time budget.

Guards against accidental complexity regressions in the engine or the
compression stack (e.g. a fold-window scan going quadratic) that the small
unit tests would not notice.
"""

import time

import pytest

from repro.harness import Mode, overhead, run_suite
from repro.replay import replay_trace


@pytest.mark.slow
def test_p100_end_to_end_under_budget():
    t0 = time.monotonic()
    suite = run_suite(
        "lu",
        100,
        modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
        workload_params={"problem_class": "A", "iterations": 8, "detail": 2},
        call_frequency=2,
    )
    app = suite[Mode.APP]
    ch, st = suite[Mode.CHAMELEON], suite[Mode.SCALATRACE]

    # reproduction shape at P=100
    assert overhead(ch, app) < overhead(st, app)

    replay = replay_trace(ch.trace, nprocs=100)
    assert replay.time > 0

    wall = time.monotonic() - t0
    assert wall < 240, f"P=100 pipeline took {wall:.0f}s (budget 240s)"


@pytest.mark.slow
def test_simulator_handles_512_ranks():
    from repro.simmpi import run_spmd

    async def main(ctx):
        total = await ctx.comm.allreduce(1)
        await ctx.comm.barrier()
        return total

    t0 = time.monotonic()
    res = run_spmd(main, 512)
    assert res.results == [512] * 512
    assert time.monotonic() - t0 < 60
