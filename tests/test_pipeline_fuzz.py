"""End-to-end fuzzing: random SPMD programs through the whole pipeline.

Hypothesis generates random (but deadlock-free by construction) SPMD
communication programs from a small vocabulary of steps; each program runs
under ScalaTrace and Chameleon, and the invariants that must survive ANY
program shape are checked:

* both tracers produce a global trace whose event kinds and rank coverage
  agree (``diff_traces``),
* the Chameleon replay covers every rank and never deadlocks,
* tracing never changes the application's semantics (the runs complete
  deterministically).
"""

from hypothesis import given, settings, strategies as st

from repro.core import ChameleonConfig, ChameleonTracer
from repro.replay import replay_trace
from repro.scalatrace import ScalaTraceTracer, diff_traces
from repro.simmpi import SimConfig, ZERO_COST, run_spmd

#: step vocabulary: (name, coroutine) — all collectively deadlock-free
STEPS = ["allreduce", "barrier", "shift_right", "shift_left", "hub", "bcast"]

step_lists = st.lists(st.sampled_from(STEPS), min_size=1, max_size=6)
repeat_counts = st.integers(2, 6)
nprocs_values = st.sampled_from([2, 4, 5, 8])


async def run_step(ctx, tr, step: str) -> None:
    if step == "allreduce":
        with ctx.frame("s_allreduce"):
            await tr.allreduce(1.0, size=8)
    elif step == "barrier":
        with ctx.frame("s_barrier"):
            await tr.barrier()
    elif step == "bcast":
        with ctx.frame("s_bcast"):
            await tr.bcast(b"x", root=0, size=16)
    elif step == "shift_right":
        with ctx.frame("s_shift_r"):
            if ctx.rank + 1 < ctx.size:
                await tr.send(ctx.rank + 1, None, tag=1, size=32)
            if ctx.rank > 0:
                await tr.recv(ctx.rank - 1, tag=1)
    elif step == "shift_left":
        with ctx.frame("s_shift_l"):
            if ctx.rank > 0:
                await tr.send(ctx.rank - 1, None, tag=2, size=32)
            if ctx.rank + 1 < ctx.size:
                await tr.recv(ctx.rank + 1, tag=2)
    elif step == "hub":
        with ctx.frame("s_hub"):
            if ctx.rank == 0:
                for _w in range(1, ctx.size):
                    await tr.recv(tag=3)
            else:
                await tr.send(0, None, tag=3, size=24)


def program(steps, repeats):
    async def prog(ctx, tr):
        for _ in range(repeats):
            for step in steps:
                await run_step(ctx, tr, step)
            await tr.marker()

    return prog


def run_traced(factory, steps, repeats, nprocs):
    prog = program(steps, repeats)

    async def main(ctx):
        tracer = factory(ctx)
        await prog(ctx, tracer)
        return await tracer.finalize()

    return run_spmd(main, nprocs, config=SimConfig(network=ZERO_COST)).results[0]


class TestPipelineFuzz:
    @given(step_lists, repeat_counts, nprocs_values)
    @settings(max_examples=25, deadline=None)
    def test_tracers_agree_and_replay_succeeds(self, steps, repeats, nprocs):
        st_trace = run_traced(ScalaTraceTracer, steps, repeats, nprocs)
        ch_trace = run_traced(
            lambda ctx: ChameleonTracer(ctx, ChameleonConfig(k=3)),
            steps,
            repeats,
            nprocs,
        )
        assert st_trace is not None and ch_trace is not None

        d = diff_traces(st_trace, ch_trace)
        assert not d.missing_in_a and not d.missing_in_b
        assert d.rank_coverage_ok()
        assert d.similarity() >= 0.9

        result = replay_trace(ch_trace, nprocs=nprocs)
        assert result.time >= 0
        # heterogeneous-cluster endpoint substitution may mis-target a few
        # messages per round (the paper's <100% accuracy); the replay must
        # still complete with a bounded number of dropped/repaired ops
        p2p_steps = sum(1 for s in steps if s.startswith("shift") or s == "hub")
        assert result.stats.p2p_dropped <= 2 * (p2p_steps + 1) * repeats * nprocs

    @given(step_lists, repeat_counts)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_end_to_end(self, steps, repeats):
        a = run_traced(ScalaTraceTracer, steps, repeats, 4)
        b = run_traced(ScalaTraceTracer, steps, repeats, 4)
        assert a.serialize() == b.serialize()
