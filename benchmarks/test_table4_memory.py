"""Table IV: per-state trace memory (BT).

Paper (P=256, K=3): rank 0 allocates the most (own trace + the global
online trace, a ~49% increase); other leads about half of the unclustered
footprint; the non-leads allocate **0 bytes** during the lead state — they
follow their cluster lead — giving a ~99% smaller average per call.
"""

from repro.harness.tables import table4


def test_table4(benchmark, record_result):
    data, text = benchmark.pedantic(table4, rounds=1, iterations=1)
    record_result("table4_memory", text)

    summary = data["summary"]
    leads = data["leads"]
    nprocs = data["nprocs"]
    non_leads = [r for r in range(nprocs) if r not in leads]

    # headline space claim: zero allocation on non-leads while in L
    assert data["non_lead_zero_in_lead_state"]
    assert non_leads, "expected some non-lead ranks"

    # rank 0 carries the global online trace: largest average per call
    avgs = {r: s["avg"] for r, s in summary.items()}
    assert max(avgs, key=avgs.get) == 0

    # non-lead average per call is a small fraction of any lead's
    worst_non_lead = max(avgs[r] for r in non_leads)
    best_lead = min(avgs[r] for r in leads)
    assert worst_non_lead < 0.5 * best_lead
