"""Ablation: radix-tree arity for the inter-node trace reduction.

ScalaTrace reduces traces over a radix tree; the arity trades tree depth
(latency, log_k P levels) against per-node merge fan-in.  The resulting
global trace must be identical in content regardless of arity — only the
cost profile moves.
"""

from repro.harness import Mode, overhead, render_table, run_suite

ARITIES = (2, 4, 8)
P = 16
PARAMS = {"problem_class": "A", "iterations": 10}


def _rows():
    rows = []
    for arity in ARITIES:
        suite = run_suite(
            "bt",
            P,
            modes=(Mode.APP, Mode.SCALATRACE),
            workload_params=PARAMS,
            config_overrides={"tree_arity": arity},
        )
        app, st = suite[Mode.APP], suite[Mode.SCALATRACE]
        mass = sum(l.record.dhist.total for l in st.trace.leaves())
        rows.append(
            {
                "arity": arity,
                "overhead": overhead(st, app),
                "leaves": st.trace.leaf_count(),
                "mass": mass,
                "merge_time": st.stat("merge_time", source="tracer"),
            }
        )
    return rows


def test_tree_arity(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["arity", "ST overhead [s]", "merge time [s]", "trace leaves",
         "event mass"],
        [
            [r["arity"], r["overhead"], r["merge_time"], r["leaves"],
             r["mass"]]
            for r in rows
        ],
        title=f"Ablation: reduction-tree arity (BT, P={P})",
    )
    record_result("ablation_tree_arity", text)

    # every (rank, event) observation is represented regardless of tree
    # shape (leaf counts may differ: merge order moves splice boundaries)
    assert len({r["mass"] for r in rows}) == 1
    # all arities complete with sane overheads, same order of magnitude
    ovs = [r["overhead"] for r in rows]
    assert all(o > 0 for o in ovs)
    assert max(ovs) < 4 * min(ovs)
