"""Ablation: trace extrapolation vs native tracing (ScalaExtrap-lite).

How well does a trace collected at small P stand in for a native trace at
larger P?  For 1-D decompositions and hub topologies the location-
independent encodings make the extrapolated replay nearly indistinguishable
from the native one — the property ScalaTrace's encodings were designed
around and the reason Chameleon's cluster replay works at all.
"""

from repro.harness import Mode, render_table, run_suite
from repro.harness.runner import full_scale
from repro.replay import accuracy, extrapolate_trace, replay_trace

# fixed dispatch rounds: extrapolation preserves the iteration structure,
# so the native comparison must scale weakly (same rounds, more workers)
PARAMS = {"iterations": 12, "task_seconds": 0.002}


def _rows():
    base_p = 9
    targets = [17, 33, 65] if full_scale() else [17, 33]
    small = run_suite(
        "emf", base_p, modes=(Mode.SCALATRACE,), workload_params=PARAMS
    )[Mode.SCALATRACE].trace
    rows = []
    for p in targets:
        native_suite = run_suite(
            "emf", p, modes=(Mode.APP, Mode.SCALATRACE), workload_params=PARAMS
        )
        native = native_suite[Mode.SCALATRACE].trace
        extrap, report = extrapolate_trace(small, p)
        rep_native = replay_trace(native, nprocs=p)
        rep_extrap = replay_trace(extrap, nprocs=p)
        rows.append(
            {
                "P": p,
                "native_time": rep_native.time,
                "extrap_time": rep_extrap.time,
                "accuracy": accuracy(rep_native.time, rep_extrap.time),
                "dropped": rep_extrap.stats.p2p_dropped,
                "coverage": report.coverage,
            }
        )
    return rows


def test_extrapolation(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["P", "native replay [s]", "extrapolated replay [s]", "accuracy",
         "dropped p2p", "ranklist coverage"],
        [
            [r["P"], r["native_time"], r["extrap_time"],
             f"{100 * r['accuracy']:.2f}%", r["dropped"],
             f"{100 * r['coverage']:.0f}%"]
            for r in rows
        ],
        title="Ablation: ScalaExtrap-lite (EMF traced at P=9)",
    )
    record_result("ablation_extrapolation", text)

    for r in rows:
        assert r["dropped"] == 0
        assert r["accuracy"] > 0.75
        assert r["coverage"] > 0.9
