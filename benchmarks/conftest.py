"""Shared fixtures for the experiment benchmarks.

Each bench regenerates one of the paper's tables/figures, prints it, writes
it under ``benchmarks/results/`` and asserts the paper's *shape* claims
(who wins, rough factors, crossovers).  ``REPRO_FULL_SCALE=1`` lifts runs
to paper scale (P up to 1024, full iteration counts).

All benches route through the shared
:class:`~repro.harness.engine.ExperimentEngine`: previously-computed cells
are served from the content-addressed run cache, and ``REPRO_JOBS=N`` fans
cache misses out over worker processes.  A summary of hits/misses is
printed at the end of the session.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.engine import configure_engine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def experiment_engine():
    """One engine (cache + worker pool) for the whole bench session.

    Configured from the environment: ``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
    ``REPRO_NO_CACHE``.
    """
    engine = configure_engine()
    yield engine
    print("\n" + engine.metrics.summary())


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Print a rendered experiment table and persist it to disk."""

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _record
