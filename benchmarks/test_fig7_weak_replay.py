"""Figure 7: weak-scaling replay time and accuracy.

Paper (Observation 5): clustered traces replay as accurately as ScalaTrace
under weak scaling — 90.75% (LU-W) and 98.32% (Sweep3D) relative to the
application; Sweep3D's load imbalance does not hurt because delta times
live in histograms.
"""

from repro.harness.figures import figure7


def test_figure7(benchmark, record_result):
    rows, text = benchmark.pedantic(figure7, rounds=1, iterations=1)
    record_result("fig7_weak_replay", text)

    for r in rows:
        assert r["acc_vs_app"] >= 0.80, r
    by_bench: dict[str, list[float]] = {}
    for r in rows:
        by_bench.setdefault(r["benchmark"], []).append(r["acc_vs_app"])
    for name, accs in by_bench.items():
        assert sum(accs) / len(accs) >= 0.85, (name, accs)
