"""Figure 9: Chameleon overhead vs number of marker (clustering) calls.

Paper: LU class D at P=1024; the overhead maxes out when Chameleon creates
signatures at every timestep (300 calls) and is still an order of magnitude
below ScalaTrace's.

Shape assertions: overhead is monotone(ish) increasing in the number of
effective marker calls and the every-timestep maximum stays bounded.
"""

from repro.harness.figures import figure9


def test_figure9(benchmark, record_result):
    rows, text = benchmark.pedantic(figure9, rounds=1, iterations=1)
    record_result("fig9_marker_sweep", text)

    rows = sorted(rows, key=lambda r: r["marker_calls"])
    assert rows[0]["marker_calls"] < rows[-1]["marker_calls"]
    # the max-marker configuration costs the most
    assert rows[-1]["overhead"] >= max(r["overhead"] for r in rows) * 0.99
    # and no more than ~3x the single-call configuration at these scales
    assert rows[-1]["overhead"] < 5 * rows[0]["overhead"]
