"""Ablation: the automatic parameter filter on POP (paper §V).

POP's barotropic solver has data-dependent inner iteration counts, so the
raw sequence Call-Path signature never stabilizes and Chameleon would stay
in the all-tracing state forever.  The paper applies "the automatic filter
from [2] for call parameters so that the communication pattern becomes
regular and can be represented by 3 clusters" — reproduced here as the
``dedup`` signature mode.  This bench shows the filter is what enables
clustering.
"""

from repro.harness import Mode, render_table, run_suite

P = 16
PARAMS = {"grid_points": 64, "block": 8, "iterations": 12}


def _rows():
    rows = []
    for mode_name in ("sequence", "dedup"):
        suite = run_suite(
            "pop",
            P,
            modes=(Mode.CHAMELEON,),
            workload_params=PARAMS,
            call_frequency=1,
            config_overrides={"signature_filter": mode_name},
        )
        cs = suite[Mode.CHAMELEON].cstats0
        rows.append(
            {
                "filter": mode_name,
                "C": cs.state_counts.get("clustering", 0),
                "L": cs.state_counts.get("lead", 0),
                "AT": cs.state_counts.get("all-tracing", 0),
                "callpaths": cs.num_callpaths,
            }
        )
    return rows


def test_signature_filter(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["filter", "#C", "#L", "#AT", "#Call-Paths"],
        [[r["filter"], r["C"], r["L"], r["AT"], r["callpaths"]] for r in rows],
        title=f"Ablation: POP signature filter (P={P})",
    )
    record_result("ablation_signature_filter", text)

    raw = next(r for r in rows if r["filter"] == "sequence")
    dedup = next(r for r in rows if r["filter"] == "dedup")
    # without the filter POP never leaves all-tracing (no clustering)
    assert raw["C"] == 0
    assert raw["L"] == 0
    # with it the transition graph stabilizes into the lead phase
    assert dedup["C"] >= 1
    assert dedup["L"] >= 1
