"""Ablation: DVFS energy savings on non-lead ranks (paper's future work).

The paper's conclusion proposes harvesting the idle time of the P-K
non-representative processes with DVFS.  This bench quantifies the proposal
with the reproduction's busy/slack accounting: tracing BT under Chameleon,
then comparing run energy with idle-power slack vs DVFS-power slack on the
non-leads.
"""

from repro.core import energy_report
from repro.harness import Mode, render_table, run_suite
from repro.harness.runner import full_scale


def _rows():
    # P must exceed the ~9 positional behaviour classes of the 2-D grid or
    # every rank is a lead and there is no idle time to harvest
    p_list = [16, 64, 256] if full_scale() else [16, 36]
    rows = []
    for p in p_list:
        suite = run_suite(
            "bt",
            p,
            modes=(Mode.APP, Mode.CHAMELEON),
            workload_params={"problem_class": "A", "iterations": 12},
            call_frequency=3,
        )
        app, ch = suite[Mode.APP], suite[Mode.CHAMELEON]
        report = energy_report(
            app.busy_times, app.max_time, ch.busy_times, ch.max_time,
            ch.lead_ranks,
        )
        rows.append(
            {
                "P": p,
                "leads": len(ch.lead_ranks),
                "app_J": report.app_joules,
                "traced_J": report.traced_joules,
                "dvfs_J": report.traced_dvfs_joules,
                "savings": report.dvfs_savings,
            }
        )
    return rows


def test_dvfs_energy(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["P", "#leads", "APP [J]", "traced [J]", "traced+DVFS [J]",
         "DVFS savings"],
        [
            [r["P"], r["leads"], r["app_J"], r["traced_J"], r["dvfs_J"],
             f"{100 * r['savings']:.1f}%"]
            for r in rows
        ],
        title="Ablation: DVFS energy on non-lead ranks (BT)",
    )
    record_result("ablation_dvfs_energy", text)

    for r in rows:
        assert r["leads"] < r["P"]  # some ranks actually idle
        assert r["dvfs_J"] < r["traced_J"]  # DVFS always saves
        assert r["savings"] > 0.0
    # more non-leads at larger P -> at least comparable relative savings
    assert rows[-1]["savings"] >= rows[0]["savings"] * 0.5
