"""Figure 11: overhead per method vs input problem size (LU classes A-D).

Paper (Observation 8): at P=256 with a marker at every timestep, Chameleon
retains an order of magnitude lower overhead than ScalaTrace irrespective
of the input class; Chameleon's overhead grows with the number of timesteps
(each one a marker call).

Shape assertions: Chameleon overhead stays below ScalaTrace's for every
class, and application time grows with the class size.
"""

from repro.harness.figures import figure11


def test_figure11(benchmark, record_result):
    rows, text = benchmark.pedantic(figure11, rounds=1, iterations=1)
    record_result("fig11_problem_sizes", text)

    app_times = [r["app_time"] for r in rows]
    assert app_times == sorted(app_times)  # A < B < C < D
    for r in rows:
        assert r["chameleon_overhead"] < r["scalatrace_overhead"], r
        # Chameleon's inter-compression share stays small (the clustering
        # share is what grows with timesteps)
        assert r["ch_intercompression"] < r["scalatrace_overhead"]
