"""Figure 6: weak-scaling execution overhead (LU-W, Sweep3D).

Paper (Observation 4): Chameleon's clustering yields 1-3 orders of magnitude
shorter (tracing) execution time than ScalaTrace under weak scaling.

Shape assertions: the ScalaTrace/Chameleon overhead ratio exceeds 1 at the
largest P for both weak-scaling codes and grows with P.
"""

from repro.harness.figures import figure6


def test_figure6(benchmark, record_result):
    rows, text = benchmark.pedantic(figure6, rounds=1, iterations=1)
    record_result("fig6_weak_overhead", text)

    by_bench: dict[str, list[dict]] = {}
    for r in rows:
        by_bench.setdefault(r["benchmark"], []).append(r)

    for name, series in by_bench.items():
        series.sort(key=lambda r: r["P"])
        ratios = [
            r["scalatrace_overhead"] / r["chameleon_overhead"]
            for r in series
            if r["chameleon_overhead"] > 0
        ]
        assert ratios[-1] > 1.0, (name, ratios)
        assert ratios[-1] >= ratios[0], (name, ratios)
