"""Figure 10: re-clustering cost (modified LU with injected phase changes).

Paper: LU is modified so that every tenth timestep calls an extra
MPI_Barrier from a new call site, forcing a phase change; with up to 30
re-clusterings Chameleon's overhead grows but stays an order of magnitude
below ScalaTrace's (at P=1024).

Shape assertions: measured re-clusterings track the injected phase changes
and the overhead grows with them.  (The Chameleon-vs-ScalaTrace gap is a
large-P property — at quick scale K is close to P and repeated lead merges
can exceed ScalaTrace's single pass; the full-scale run reproduces the
paper's ordering.  See EXPERIMENTS.md.)
"""

import os

from repro.harness.figures import figure10


def test_figure10(benchmark, record_result):
    rows, text = benchmark.pedantic(figure10, rounds=1, iterations=1)
    record_result("fig10_reclustering", text)

    rows = sorted(rows, key=lambda r: r["requested_reclusterings"])
    measured = [r["measured_reclusterings"] for r in rows]
    overheads = [r["overhead"] for r in rows]
    # more injected phase changes -> more re-clusterings -> more overhead
    assert measured[-1] > measured[0]
    assert overheads[-1] > overheads[0]
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        # the paper's ordering at scale: even the max-re-clustering run is
        # cheaper than ScalaTrace
        assert overheads[-1] < rows[-1]["scalatrace_overhead"]
