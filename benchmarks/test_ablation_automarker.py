"""Ablation: automatic vs manual marker insertion (paper §VII).

The paper leaves marker placement to the programmer and suggests it "can be
automated" for iterative codes.  This bench compares the manual-marker
Chameleon run against :class:`AutoMarkerTracer` (online period detection on
the collective stream) on the same workload: the automatic variant must
reach the same clustering structure at comparable overhead.
"""

from repro.core import AutoMarkerTracer, ChameleonConfig, ChameleonTracer
from repro.harness import Mode, render_table, run_mode, overhead
from repro.simmpi import run_spmd
from repro.workloads import LU, NullTracer, make_workload

P = 16
PARAMS = {"problem_class": "A", "iterations": 12, "detail": 2}


def _run(tracer_factory):
    workload = make_workload("lu", **PARAMS)

    async def main(ctx):
        tracer = tracer_factory(ctx)
        await workload.run(ctx, tracer)
        await tracer.finalize()
        return {
            "cstats": tracer.cstats,
            "clock": ctx.clock,
            "auto": getattr(tracer, "auto_markers", None),
        }

    return run_spmd(main, P)


def _rows():
    app_workload = make_workload("lu", **PARAMS)

    async def app_main(ctx):
        await app_workload.run(ctx, NullTracer(ctx))
        return None

    app = run_spmd(app_main, P)
    manual = _run(lambda ctx: ChameleonTracer(ctx, ChameleonConfig(k=9)))
    auto = _run(
        lambda ctx: AutoMarkerTracer(ctx, ChameleonConfig(k=9), confirmations=3)
    )
    rows = []
    for name, res in (("manual", manual), ("auto", auto)):
        cs = res.results[0]["cstats"]
        rows.append(
            {
                "variant": name,
                "overhead": res.total_time - app.total_time,
                "effective_calls": cs.effective_calls,
                "C": cs.state_counts.get("clustering", 0),
                "L": cs.state_counts.get("lead", 0),
                "callpaths": cs.num_callpaths,
                "auto_markers": res.results[0]["auto"],
            }
        )
    return rows


def test_automarker(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["variant", "overhead [s]", "#calls", "#C", "#L", "#Call-Paths",
         "auto markers"],
        [
            [r["variant"], r["overhead"], r["effective_calls"], r["C"],
             r["L"], r["callpaths"], r["auto_markers"] or "-"]
            for r in rows
        ],
        title=f"Ablation: automatic vs manual markers (LU, P={P})",
    )
    record_result("ablation_automarker", text)

    manual = next(r for r in rows if r["variant"] == "manual")
    auto = next(r for r in rows if r["variant"] == "auto")
    # the detector finds the timestep anchor and fires markers
    assert auto["auto_markers"] and auto["auto_markers"] >= 6
    # same clustering structure emerges without source modification
    assert auto["C"] == manual["C"] == 1
    assert auto["callpaths"] == manual["callpaths"]
    # Overhead is higher but bounded: the detector may anchor on a
    # collective that is NOT the programmer's progress point (e.g. a
    # mid-timestep norm), so the vote synchronizes ranks at a point where
    # they are naturally skewed — evidence for the paper's observation
    # that *good* marker placement is an open problem (§VII (2)).
    assert auto["overhead"] < 10 * manual["overhead"]
