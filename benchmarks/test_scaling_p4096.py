"""Paper-scale acceptance: the simulated runtime at P=4096.

The indexed mailbox and the de-quadratic'd scheduler exist so the paper's
P=4096 data points are *reachable* — these benches drive ``run_spmd`` at
that scale, assert the wall-clock budget, and regenerate the
``BENCH_scaling.json`` document that CI gates against the committed
baseline (``benchmarks/BENCH_scaling.json``, refresh with ``repro bench -o
benchmarks/BENCH_scaling.json``).

All tests here are ``slow``-marked: tier-1 stays fast, and CI's dedicated
``bench`` job (plus ``REPRO_FULL_SCALE`` locally) runs them.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.harness.bench import (
    compare,
    load_bench,
    run_scaling_bench,
    save_bench,
)
from repro.obs.schema import validate
from repro.simmpi import run_spmd

pytestmark = pytest.mark.slow

_HERE = pathlib.Path(__file__).parent
BASELINE_PATH = _HERE / "BENCH_scaling.json"
SCHEMA_PATH = _HERE.parent / "schemas" / "bench_scaling.schema.json"


async def _allreduce_barrier(ctx):
    total = await ctx.comm.allreduce(ctx.rank)
    await ctx.comm.barrier()
    return total


def test_p4096_allreduce_barrier_under_budget():
    """The ISSUE's acceptance bar: allreduce+barrier at P=4096 in < 60 s."""
    t0 = time.perf_counter()
    result = run_spmd(_allreduce_barrier, 4096)
    wall = time.perf_counter() - t0
    assert wall < 60.0, f"P=4096 allreduce+barrier took {wall:.1f}s"
    assert result.results == [4096 * 4095 // 2] * 4096
    assert result.messages_matched > 0


def test_p4096_linear_indexed_equivalence_spot_check():
    """At full scale the indexed mailbox must still reproduce the linear
    reference bit-for-bit (the exhaustive randomized check lives in
    tests/simmpi/test_mailbox_matching.py at smaller P)."""
    indexed = run_spmd(_allreduce_barrier, 1024, matching="indexed")
    linear = run_spmd(_allreduce_barrier, 1024, matching="linear")
    assert indexed.clocks == linear.clocks
    assert indexed.busy_times == linear.busy_times
    assert indexed.messages_matched == linear.messages_matched


def test_bench_document_schema_and_gate(results_dir):
    """Regenerate BENCH_scaling.json, validate it, gate vs the baseline."""
    doc = run_scaling_bench()
    out = results_dir / "BENCH_scaling.json"
    save_bench(doc, str(out))

    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    errors = validate(doc, schema)
    assert errors == [], errors

    cells = {(r["kernel"], r["nprocs"]) for r in doc["results"]}
    for p in (256, 1024, 4096):
        assert ("allreduce_barrier", p) in cells
        assert ("halo_exchange", p) in cells

    # Loose local gate (2x): catches order-of-magnitude regressions on any
    # hardware; the strict ±20% comparison runs in CI's bench job where the
    # baseline matches the machine class.
    problems = compare(doc, load_bench(str(BASELINE_PATH)), tolerance=1.0)
    assert problems == [], problems
