"""Paper-scale acceptance: the simulated runtime at P=4096 and P=16384.

The indexed mailbox and the de-quadratic'd scheduler made the paper's
P=4096 data points *reachable*; the macro-collective fast path makes
P=16384 routine — these benches drive ``run_spmd`` at both scales, assert
the wall-clock budgets, and regenerate the ``BENCH_scaling.json`` document
that CI gates against the committed baseline
(``benchmarks/BENCH_scaling.json``, refresh with ``repro bench -o
benchmarks/BENCH_scaling.json``).

All tests here are ``slow``-marked: tier-1 stays fast, and CI's dedicated
``bench`` job (plus ``REPRO_FULL_SCALE`` locally) runs them.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.harness.bench import (
    SHARD_TIERS,
    compare,
    load_bench,
    run_scaling_bench,
    save_bench,
)
from repro.obs.schema import validate
from repro.simmpi import SimConfig, run_spmd

pytestmark = pytest.mark.slow

_HERE = pathlib.Path(__file__).parent
BASELINE_PATH = _HERE / "BENCH_scaling.json"
SCHEMA_PATH = _HERE.parent / "schemas" / "bench_scaling.schema.json"


async def _allreduce_barrier(ctx):
    total = await ctx.comm.allreduce(ctx.rank)
    await ctx.comm.barrier()
    return total


def test_p4096_allreduce_barrier_under_budget():
    """The original acceptance bar: allreduce+barrier at P=4096 in < 60 s."""
    t0 = time.perf_counter()
    result = run_spmd(_allreduce_barrier, 4096)
    wall = time.perf_counter() - t0
    assert wall < 60.0, f"P=4096 allreduce+barrier took {wall:.1f}s"
    assert result.results == [4096 * 4095 // 2] * 4096
    # Pure-collective kernel: every instance takes the macro fast path, so
    # nothing goes through the mailbox.
    assert result.collectives_fast == 3 * 4096
    assert result.messages_matched == 0


def test_p16384_allreduce_barrier_fast_path():
    """The macro-collective tier: P=16384 completes in interactive time and
    is bit-identical in virtual time to a (much slower) simulated run —
    spot-checked here via makespan against a small-P extrapolation-free
    direct comparison in tests/simmpi/test_collective_fastpath.py."""
    t0 = time.perf_counter()
    result = run_spmd(_allreduce_barrier, 16384)
    wall = time.perf_counter() - t0
    assert wall < 60.0, f"P=16384 allreduce+barrier took {wall:.1f}s"
    assert result.results == [16384 * 16383 // 2] * 16384
    assert result.collectives_fast == 3 * 16384
    assert result.collectives_simulated == 0
    assert result.engine_steps == 16384  # one resume per rank


def test_p4096_fast_vs_simulated_bit_identical():
    """At full scale the macro path must still reproduce the message-level
    reference bit-for-bit (the exhaustive fuzz lives in
    tests/simmpi/test_collective_fastpath.py at smaller P)."""
    fast = run_spmd(_allreduce_barrier, 4096,
                    config=SimConfig(collectives="fast"))
    sim = run_spmd(_allreduce_barrier, 4096,
                   config=SimConfig(collectives="simulated"))
    assert fast.results == sim.results
    assert fast.clocks == sim.clocks
    assert fast.busy_times == sim.busy_times
    assert fast.total_messages == sim.total_messages
    assert fast.total_bytes == sim.total_bytes


def test_p4096_linear_indexed_equivalence_spot_check():
    """At full scale the indexed mailbox must still reproduce the linear
    reference bit-for-bit (the exhaustive randomized check lives in
    tests/simmpi/test_mailbox_matching.py at smaller P).  Run simulated:
    linear matching is a fast-path fallback condition, so the fast knob
    would make the comparison trivially skip the mailbox."""
    indexed = run_spmd(_allreduce_barrier, 1024,
                       config=SimConfig(matching="indexed",
                                        collectives="simulated"))
    linear = run_spmd(_allreduce_barrier, 1024,
                      config=SimConfig(matching="linear",
                                       collectives="simulated"))
    assert indexed.clocks == linear.clocks
    assert indexed.busy_times == linear.busy_times
    assert indexed.messages_matched == linear.messages_matched


def test_p16384_sharded_bit_identical_and_under_budget():
    """The sharded-engine tier: shards=4 at P=16384 must stay bit-identical
    to the single-process engine (no fallback) and inside interactive
    time; the wall-time race against the committed single-process number
    runs in CI's bench job via the BENCH_scaling gate."""
    single = run_spmd(_allreduce_barrier, 16384)
    t0 = time.perf_counter()
    sharded = run_spmd(_allreduce_barrier, 16384, config=SimConfig(shards=4))
    wall = time.perf_counter() - t0
    assert wall < 60.0, f"P=16384 shards=4 took {wall:.1f}s"
    assert sharded.extras.get("shards") == 4
    assert "shard_fallback" not in sharded.extras
    assert sharded.results == single.results
    assert sharded.clocks == single.clocks
    assert sharded.busy_times == single.busy_times
    assert sharded.total_messages == single.total_messages
    assert sharded.total_bytes == single.total_bytes


def test_p65536_sharded_tier_completes():
    """The new top rung: allreduce+barrier at P=65536 under shards=4."""
    t0 = time.perf_counter()
    result = run_spmd(_allreduce_barrier, 65536, config=SimConfig(shards=4))
    wall = time.perf_counter() - t0
    assert wall < 120.0, f"P=65536 shards=4 took {wall:.1f}s"
    assert result.results == [65536 * 65535 // 2] * 65536
    assert result.collectives_fast == 3 * 65536
    assert "shard_fallback" not in result.extras


def test_bench_document_schema_and_gate(results_dir):
    """Regenerate BENCH_scaling.json, validate it, gate vs the baseline."""
    doc = run_scaling_bench()
    out = results_dir / "BENCH_scaling.json"
    save_bench(doc, str(out))

    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    errors = validate(doc, schema)
    assert errors == [], errors

    cells = {(r["kernel"], r["nprocs"], r["shards"]) for r in doc["results"]}
    for p in (256, 1024, 4096, 16384):
        assert ("allreduce_barrier", p, 1) in cells
        assert ("halo_exchange", p, 1) in cells
    for kernel, p, shards in SHARD_TIERS:
        assert (kernel, p, shards) in cells

    # Loose local gate (2x): catches order-of-magnitude regressions on any
    # hardware; the strict ±20% comparison runs in CI's bench job where the
    # baseline matches the machine class.
    problems = compare(doc, load_bench(str(BASELINE_PATH)), tolerance=1.0)
    assert problems == [], problems
