"""Table III: ACURDION vs Chameleon execution overhead (BT, max markers).

Paper: with the maximum number of marker calls, Chameleon's *time* overhead
is roughly twice ACURDION's (ACURDION clusters only once inside finalize) —
the price of online phase tracking, bought back in space (Table IV) and in
the online global trace.
"""

from repro.harness.tables import table3


def test_table3(benchmark, record_result):
    rows, text = benchmark.pedantic(table3, rounds=1, iterations=1)
    record_result("table3_acurdion", text)

    for row in rows:
        # direction: the single-pass baseline is cheaper in time ...
        assert row["acurdion"] < row["chameleon"], row
    # ... and both overheads grow with P
    acur = [r["acurdion"] for r in rows]
    cham = [r["chameleon"] for r in rows]
    assert acur == sorted(acur)
    assert cham == sorted(cham)
