"""Figure 4: strong-scaling execution overhead (APP / Chameleon / ScalaTrace).

Paper (Observation 2): Chameleon has much lower overhead than ScalaTrace
under strong scaling — *except for extremely small traces* (EMF), where
ScalaTrace wins below the crossover (paper: P < 501) because EMF's whole
trace is a handful of PRSD events.

Shape assertions at reproduction scale: ScalaTrace/Chameleon overhead ratio
is > 1 for the stencil codes at the largest P and grows with P, while EMF
stays below the crossover at small P.
"""

from repro.harness.figures import figure4


def test_figure4(benchmark, record_result):
    rows, text = benchmark.pedantic(figure4, rounds=1, iterations=1)
    record_result("fig4_strong_overhead", text)

    by_bench: dict[str, list[dict]] = {}
    for r in rows:
        by_bench.setdefault(r["benchmark"], []).append(r)

    for name, series in by_bench.items():
        series.sort(key=lambda r: r["P"])
        ratios = [
            r["scalatrace_overhead"] / r["chameleon_overhead"]
            for r in series
            if r["chameleon_overhead"] > 0
        ]
        if name == "emf":
            # extremely small traces: ScalaTrace wins below the crossover
            assert ratios[0] < 1.5
            continue
        # stencil codes: Chameleon wins at scale and the gap grows with P
        assert ratios[-1] > 1.0, (name, ratios)
        assert ratios[-1] >= ratios[0] * 0.9, (name, ratios)
        # overhead is a minor fraction of the application run (paper: <50%)
        largest = series[-1]
        assert largest["chameleon_overhead"] < 0.5 * largest["app_time"]
