"""Ablation: lead-selection algorithm (K-Medoids vs K-Farthest vs K-Random).

Paper §III: "Users could select any clustering algorithm (e.g., K-Medoid,
K-Furthest, K-Random selection).  Bahmani and Mueller in [3] compared
K-Medoid and K-Furthest clustering and observed that the accuracy of traces
is very close for these clustering algorithms."

This bench runs the same workload under all three selectors and compares
tracing overhead and replay accuracy.
"""

from repro.harness import Mode, overhead, render_table, run_suite
from repro.replay import accuracy, replay_trace

ALGOS = ("kfarthest", "kmedoids", "krandom", "hierarchical")
P = 16
PARAMS = {"problem_class": "A", "iterations": 12}


def _rows():
    rows = []
    for algo in ALGOS:
        suite = run_suite(
            "bt",
            P,
            modes=(Mode.APP, Mode.CHAMELEON),
            workload_params=PARAMS,
            call_frequency=3,
            config_overrides={"algorithm": algo},
        )
        app, ch = suite[Mode.APP], suite[Mode.CHAMELEON]
        replay = replay_trace(ch.trace, nprocs=P)
        rows.append(
            {
                "algorithm": algo,
                "overhead": overhead(ch, app),
                "accuracy": accuracy(app.max_time, replay.time),
                "k_used": ch.cstats0.k_used,
            }
        )
    return rows


def test_clustering_algorithms(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["algorithm", "overhead [s]", "replay accuracy", "K used"],
        [
            [r["algorithm"], r["overhead"], f"{100 * r['accuracy']:.2f}%",
             r["k_used"]]
            for r in rows
        ],
        title=f"Ablation: clustering algorithm (BT, P={P})",
    )
    record_result("ablation_clustering_algos", text)

    # the paper's finding: accuracies are very close across selectors
    accs = [r["accuracy"] for r in rows]
    assert min(accs) > 0.85
    assert max(accs) - min(accs) < 0.10
    # overheads are in the same ballpark (same marker machinery)
    ovs = [r["overhead"] for r in rows]
    assert max(ovs) < 3 * min(ovs)
