"""Table II: marker calls and transition-graph state counts.

The scaled runs keep the paper's effective-call counts, so the C/L/AT
distribution must match the paper **exactly** — one clustering per run, the
lead state dominating (>70% of calls at the paper's frequencies).
"""

from repro.harness.tables import table2


def test_table2(benchmark, record_result):
    rows, text = benchmark.pedantic(table2, rounds=1, iterations=1)
    record_result("table2_states", text)

    for row in rows:
        paper = row["paper"]
        assert row["calls"] == paper["calls"], row["pgm"]
        assert row["C"] == paper["C"], row["pgm"]
        assert row["L"] == paper["L"], row["pgm"]
        assert row["AT"] == paper["AT"], row["pgm"]
        # paper: exactly one clustering for all tested benchmarks
        assert row["C"] == 1
    # paper: the lead state accounts for >70% of marker calls at the
    # evaluated frequencies for the long-running benchmarks
    for row in rows:
        if row["calls"] >= 10:
            assert row["L"] / row["calls"] >= 0.7, row["pgm"]
