"""Table I: number of clusters (K) per benchmark.

Paper: K is configured a priori per benchmark (BT/SP/POP: 3, LU/S3D/LUW: 9,
EMF: 2) and Chameleon grows K dynamically when the number of distinct
Call-Path clusters exceeds it.  The bench regenerates the configured K per
benchmark plus this reproduction's *measured* Call-Path cluster counts.
"""

from repro.harness.tables import table1
from repro.workloads import PAPER_K

PAPER_TABLE1 = {"bt": 3, "lu": 9, "sp": 3, "pop": 3, "sweep3d": 9, "luw": 9, "emf": 2}


def test_table1(benchmark, record_result):
    rows, text = benchmark.pedantic(table1, rounds=1, iterations=1)
    record_result("table1_clusters", text)

    by_pgm = {r["pgm"]: r for r in rows}
    # the configured K values are exactly the paper's Table I
    assert PAPER_K == PAPER_TABLE1
    for row in rows:
        assert row["configured_k"] == row["paper_k"]
        # dynamic-K rule: every Call-Path cluster gets a representative
        assert row["k_used"] >= min(row["configured_k"], row["measured_callpaths"])
    # EMF: exactly master + workers (paper: K=2)
    assert by_pgm["EMF"]["measured_callpaths"] == 2
    # paper: "the number of Call-Path usually is below 9, ... sufficient to
    # cover stencil codes" — position classes on a 2-D grid cap at 9
    for pgm in ("BT", "LU", "SP", "S3D", "LUW"):
        assert by_pgm[pgm]["measured_callpaths"] <= 9
