"""Ablation: network sensitivity (QDR-like vs 10x-slower interconnect).

Finding: Chameleon's per-marker vote (reduce + bcast every effective
marker) makes it *latency-sensitive* — on a 10x-slower interconnect its
overhead grows much faster than ScalaTrace's single finalize reduction at
small P, eroding the quick-scale gap.  Chameleon's advantage rests on
merge-work dominance (large P / large traces), not on the interconnect.
"""

from repro.harness import Mode, overhead, render_table, run_suite
from repro.simmpi import QDR_CLUSTER, SLOW_CLUSTER

P = 16
PARAMS = {"problem_class": "A", "iterations": 10}


def _rows():
    rows = []
    for name, network in (("qdr", QDR_CLUSTER), ("slow", SLOW_CLUSTER)):
        suite = run_suite(
            "bt",
            P,
            modes=(Mode.APP, Mode.CHAMELEON, Mode.SCALATRACE),
            workload_params=PARAMS,
            call_frequency=2,
            network=network,
        )
        app = suite[Mode.APP]
        ch = overhead(suite[Mode.CHAMELEON], app)
        st = overhead(suite[Mode.SCALATRACE], app)
        rows.append(
            {
                "network": name,
                "app": app.total_time,
                "chameleon": ch,
                "scalatrace": st,
                "ratio": st / ch if ch else float("inf"),
            }
        )
    return rows


def test_network_sensitivity(benchmark, record_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    text = render_table(
        ["network", "APP [s]", "Chameleon ovh [s]", "ScalaTrace ovh [s]",
         "ST/CH"],
        [
            [r["network"], r["app"], r["chameleon"], r["scalatrace"],
             r["ratio"]]
            for r in rows
        ],
        title=f"Ablation: interconnect speed (BT, P={P})",
    )
    record_result("ablation_network", text)

    qdr, slow = rows[0], rows[1]
    # the slower network makes everything dearer
    assert slow["app"] > qdr["app"]
    assert slow["chameleon"] > qdr["chameleon"]
    assert slow["scalatrace"] > qdr["scalatrace"] * 0.9
    # on the fast interconnect Chameleon wins at this scale
    assert qdr["ratio"] > 1.0
    # the vote's latency sensitivity: Chameleon's overhead grows faster
    # than ScalaTrace's on the slow network
    ch_growth = slow["chameleon"] / qdr["chameleon"]
    st_growth = slow["scalatrace"] / qdr["scalatrace"]
    assert ch_growth > st_growth
