"""Figure 8: time per clustering state, maximum marker calls.

Paper (Observation 6): with a marker at every timestep, Chameleon's
combined clustering + inter-compression time stays an order of magnitude
below ScalaTrace's inter-compression for the stencil codes; for EMF the
costs are tiny for both and ScalaTrace's single merge is reported as the
larger inter-compression share.

Shape assertions: ScalaTrace's inter-compression exceeds Chameleon's for
every stencil benchmark; ScalaTrace never spends time in clustering.
"""

from repro.harness.figures import figure8


def test_figure8(benchmark, record_result):
    rows, text = benchmark.pedantic(figure8, rounds=1, iterations=1)
    record_result("fig8_state_breakdown", text)

    for r in rows:
        assert r["st_clustering"] == 0.0
        assert r["ch_clustering"] > 0.0
        if r["benchmark"] != "emf":
            assert r["st_intercompression"] > r["ch_intercompression"], r
