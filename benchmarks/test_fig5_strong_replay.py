"""Figure 5: strong-scaling replay time and accuracy.

Paper (Observation 3): replaying the clustered (Chameleon) trace represents
application execution time as accurately as the per-node ScalaTrace traces —
87%-97.75% accuracy relative to application runtime depending on benchmark.

Shape assertions: Chameleon replay accuracy vs the application stays above
the paper's weakest figure (87%, with small-scale slack), and Chameleon's
replay time tracks ScalaTrace's closely.
"""

from repro.harness.figures import figure5


def test_figure5(benchmark, record_result):
    rows, text = benchmark.pedantic(figure5, rounds=1, iterations=1)
    record_result("fig5_strong_replay", text)

    for r in rows:
        assert r["acc_vs_app"] >= 0.80, r
        assert r["acc_vs_scalatrace"] >= 0.80, r
    # average accuracy lands in the paper's envelope
    avg = sum(r["acc_vs_app"] for r in rows) / len(rows)
    assert avg >= 0.87
