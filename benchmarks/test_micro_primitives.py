"""Micro-benchmarks of the library's hot primitives.

Unlike the experiment benches (which regenerate paper tables/figures once),
these measure the primitives themselves with pytest-benchmark's repetition:
intra-node fold throughput, the inter-node alignment merge, signature
computation, clustering selection, and a small end-to-end simulated run.
Useful as a performance-regression canary for the simulator.
"""

import pytest

from repro.core import ClusterSet, SignatureAccumulator, find_top_k
from repro.core.clustering import ClusterInfo
from repro.scalatrace import (
    EndpointStat,
    EventRecord,
    IntraCompressor,
    Op,
    RankSet,
    callpath_signature,
    hash_u64,
    merge_traces,
)
from repro.simmpi import SimConfig, ZERO_COST, run_spmd


def _event(site: int, rank: int = 0) -> EventRecord:
    rec = EventRecord(
        op=Op.SEND,
        stack_sig=hash_u64(site),
        comm_id=1,
        dest=EndpointStat.of(rank + 1, rank),
        participants=RankSet.single(rank),
    )
    rec.count.add(64)
    rec.tag.add(0)
    rec.dhist.record(1e-4)
    return rec


def test_intra_fold_throughput(benchmark):
    """Appending a periodic stream of 600 events (pattern of 6 sites)."""
    stream = [s % 6 for s in range(600)]

    def run():
        c = IntraCompressor()
        for s in stream:
            c.append(_event(s))
        return c.leaf_count()

    leaves = benchmark(run)
    assert leaves <= 12


def test_inter_merge_alignment(benchmark):
    """LCS-merging two 120-leaf traces (the O(n^2) kernel)."""

    def make(rank):
        c = IntraCompressor()
        for s in range(120):
            c.append(_event(s, rank))
        return c.take_nodes()

    def run():
        return len(merge_traces(make(0), make(1)))

    merged = benchmark(run)
    assert merged == 120


def test_callpath_signature_speed(benchmark):
    sigs = [hash_u64(i % 9) for i in range(2000)]
    out = benchmark(callpath_signature, sigs)
    assert 0 <= out < (1 << 64)


def test_signature_accumulator_speed(benchmark):
    def run():
        acc = SignatureAccumulator()
        for i in range(2000):
            acc.observe(hash_u64(i % 9), src_offset=-1, dest_offset=1)
        return acc.snapshot().callpath

    benchmark(run)


def test_find_top_k_speed(benchmark):
    clusters = [
        ClusterInfo((1, hash_u64(i), hash_u64(i * 3)), RankSet.single(i), i)
        for i in range(19)  # the 2K+1 bound for K=9
    ]

    def run():
        fresh = [c.copy() for c in clusters]
        return len(find_top_k(fresh, 9, "kmedoids"))

    assert benchmark(run) == 9


def test_cluster_tree_reduction_speed(benchmark):
    def run():
        sets = [
            ClusterSet.local((r % 4, hash_u64(r), hash_u64(r * 7)), r)
            for r in range(64)
        ]
        while len(sets) > 1:
            nxt = []
            for i in range(0, len(sets) - 1, 2):
                sets[i].merge(sets[i + 1])
                if len(sets[i]) > 19:
                    sets[i].prune(9)
                nxt.append(sets[i])
            if len(sets) % 2:
                nxt.append(sets[-1])
            sets = nxt
        sets[0].prune(9)
        return len(sets[0].covered_ranks())

    assert benchmark(run) == 64


def test_simulator_event_rate(benchmark):
    """End-to-end: 16 ranks x 50 barriers through the full engine."""

    async def main(ctx):
        for _ in range(50):
            await ctx.comm.barrier()
        return None

    def run():
        return run_spmd(main, 16, config=SimConfig(network=ZERO_COST)).nprocs

    assert benchmark(run) == 16
